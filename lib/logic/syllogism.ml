type form = A | E | I | O
type proposition = { form : form; subject : string; predicate : string }

type t = {
  major : proposition;
  minor : proposition;
  conclusion : proposition;
}

type violation =
  | Undistributed_middle
  | Illicit_major
  | Illicit_minor
  | Exclusive_premises
  | Affirmative_from_negative
  | Negative_from_affirmatives
  | Existential_from_universals
  | Malformed of string

let prop form subject predicate = { form; subject; predicate }
let subject_distributed = function A | E -> true | I | O -> false
let predicate_distributed = function E | O -> true | A | I -> false
let is_negative = function E | O -> true | A | I -> false
let is_universal = function A | E -> true | I | O -> false

(* Position of a term in a proposition, or None. *)
type position = Subject | Predicate

let position_of term p =
  if p.subject = term then Some Subject
  else if p.predicate = term then Some Predicate
  else None

let distributed_at p = function
  | Subject -> subject_distributed p.form
  | Predicate -> predicate_distributed p.form

let other_term p term =
  if p.subject = term then Some p.predicate
  else if p.predicate = term then Some p.subject
  else None

let structure t =
  let s = t.conclusion.subject and p = t.conclusion.predicate in
  if s = p then Error "conclusion relates a term to itself"
  else
    match (other_term t.major p, other_term t.minor s) with
    | None, _ -> Error "major premise does not mention the major term"
    | _, None -> Error "minor premise does not mention the minor term"
    | Some m1, Some m2 ->
        if m1 <> m2 then Error "premises do not share a middle term"
        else if m1 = s || m1 = p then
          Error "middle term coincides with an end term"
        else Ok (s, p, m1)

let middle_term t =
  match structure t with Ok (_, _, m) -> Some m | Error _ -> None

let figure t =
  match structure t with
  | Error _ -> None
  | Ok (_, _, m) -> (
      match (position_of m t.major, position_of m t.minor) with
      | Some Subject, Some Predicate -> Some 1
      | Some Predicate, Some Predicate -> Some 2
      | Some Subject, Some Subject -> Some 3
      | Some Predicate, Some Subject -> Some 4
      | _ -> None)

let mood t = (t.major.form, t.minor.form, t.conclusion.form)

let violations_uncached t =
  match structure t with
  | Error msg -> [ Malformed msg ]
  | Ok (s, p, m) ->
      let out = ref [] in
      let add v = out := v :: !out in
      let dist_in prem term =
        match position_of term prem with
        | None -> false
        | Some pos -> distributed_at prem pos
      in
      if not (dist_in t.major m || dist_in t.minor m) then
        add Undistributed_middle;
      if
        distributed_at t.conclusion Predicate
        && not (dist_in t.major p)
      then add Illicit_major;
      if distributed_at t.conclusion Subject && not (dist_in t.minor s) then
        add Illicit_minor;
      let neg_major = is_negative t.major.form
      and neg_minor = is_negative t.minor.form
      and neg_concl = is_negative t.conclusion.form in
      if neg_major && neg_minor then add Exclusive_premises
      else begin
        if (neg_major || neg_minor) && not neg_concl then
          add Affirmative_from_negative;
        if neg_concl && not (neg_major || neg_minor) then
          add Negative_from_affirmatives
      end;
      if
        is_universal t.major.form
        && is_universal t.minor.form
        && not (is_universal t.conclusion.form)
      then add Existential_from_universals;
      List.rev !out

let form_index = function A -> 0 | E -> 1 | I -> 2 | O -> 3

let make_figure fig (maj, min_, concl) =
  let s = "s" and p = "p" and m = "m" in
  let major, minor =
    match fig with
    | 1 -> (prop maj m p, prop min_ s m)
    | 2 -> (prop maj p m, prop min_ s m)
    | 3 -> (prop maj m p, prop min_ m s)
    | 4 -> (prop maj p m, prop min_ m s)
    | _ -> invalid_arg "make_figure"
  in
  { major; minor; conclusion = prop concl s p }

(* For a well-formed syllogism the rule verdict depends only on the
   mood and the figure, so all 4 x 4^3 = 256 cases are computed once
   (on canonical terms, via the rule logic above) and looked up
   thereafter.  Malformed inputs fall through to the direct path, which
   carries the specific diagnosis message. *)
let violation_table =
  lazy
    (Array.init 256 (fun i ->
         let forms = [| A; E; I; O |] in
         let fig = (i / 64) + 1 in
         let maj = forms.((i / 16) mod 4)
         and min_ = forms.((i / 4) mod 4)
         and concl = forms.(i mod 4) in
         violations_uncached (make_figure fig (maj, min_, concl))))

(* A single pass fused from [structure] and [figure]: locating the
   middle term in each premise pins down both well-formedness and the
   figure, so the verdict is one table index away.  The diagnosis
   messages must match [structure]'s exactly. *)
let violations t =
  let s = t.conclusion.subject and p = t.conclusion.predicate in
  if s = p then [ Malformed "conclusion relates a term to itself" ]
  else
    let in_major =
      if t.major.subject = p then Some (Predicate, t.major.predicate)
      else if t.major.predicate = p then Some (Subject, t.major.subject)
      else None
    and in_minor =
      if t.minor.subject = s then Some (Predicate, t.minor.predicate)
      else if t.minor.predicate = s then Some (Subject, t.minor.subject)
      else None
    in
    match (in_major, in_minor) with
    | None, _ -> [ Malformed "major premise does not mention the major term" ]
    | _, None -> [ Malformed "minor premise does not mention the minor term" ]
    | Some (maj_pos, m1), Some (min_pos, m2) ->
        if m1 <> m2 then [ Malformed "premises do not share a middle term" ]
        else if m1 = s || m1 = p then
          [ Malformed "middle term coincides with an end term" ]
        else
          let fig =
            match (maj_pos, min_pos) with
            | Subject, Predicate -> 1
            | Predicate, Predicate -> 2
            | Subject, Subject -> 3
            | Predicate, Subject -> 4
          in
          (Lazy.force violation_table).(((fig - 1) * 64)
                                        + (form_index t.major.form * 16)
                                        + (form_index t.minor.form * 4)
                                        + form_index t.conclusion.form)

let is_valid t = violations t = []

let all_forms = [ A; E; I; O ]

(* The enumeration is immutable and queried per call by benchmarks and
   tests, so it is built once. *)
let all_moods_figures =
  let all =
    lazy
      (List.concat_map
         (fun fig ->
           List.concat_map
             (fun maj ->
               List.concat_map
                 (fun min_ ->
                   List.map
                     (fun concl -> make_figure fig (maj, min_, concl))
                     all_forms)
                 all_forms)
             all_forms)
         [ 1; 2; 3; 4 ])
  in
  fun () -> Lazy.force all

let valid_form_names =
  [
    ("Barbara", (A, A, A), 1);
    ("Celarent", (E, A, E), 1);
    ("Darii", (A, I, I), 1);
    ("Ferio", (E, I, O), 1);
    ("Cesare", (E, A, E), 2);
    ("Camestres", (A, E, E), 2);
    ("Festino", (E, I, O), 2);
    ("Baroco", (A, O, O), 2);
    ("Disamis", (I, A, I), 3);
    ("Datisi", (A, I, I), 3);
    ("Bocardo", (O, A, O), 3);
    ("Ferison", (E, I, O), 3);
    ("Camenes", (A, E, E), 4);
    ("Dimaris", (I, A, I), 4);
    ("Fresison", (E, I, O), 4);
  ]

let name_of t =
  match figure t with
  | None -> None
  | Some fig ->
      let m = mood t in
      List.find_map
        (fun (name, mood', fig') ->
          if mood' = m && fig' = fig then Some name else None)
        valid_form_names

let converse p = { p with subject = p.predicate; predicate = p.subject }
let conversion_valid = function E | I -> true | A | O -> false

let violation_to_string = function
  | Undistributed_middle -> "undistributed middle term"
  | Illicit_major -> "illicit distribution of the major term"
  | Illicit_minor -> "illicit distribution of the minor term"
  | Exclusive_premises -> "two negative premises"
  | Affirmative_from_negative ->
      "affirmative conclusion from a negative premise"
  | Negative_from_affirmatives ->
      "negative conclusion from affirmative premises"
  | Existential_from_universals ->
      "particular conclusion from universal premises"
  | Malformed msg -> "malformed syllogism: " ^ msg

let form_templates = function
  | A -> format_of_string "All %s are %s"
  | E -> format_of_string "No %s are %s"
  | I -> format_of_string "Some %s are %s"
  | O -> format_of_string "Some %s are not %s"

let pp_proposition ppf p =
  Format.fprintf ppf (form_templates p.form) p.subject p.predicate

let pp ppf t =
  Format.fprintf ppf "%a; %a; therefore %a" pp_proposition t.major
    pp_proposition t.minor pp_proposition t.conclusion
