type literal = { var : string; sign : bool }
type clause = literal list
type cnf = clause list

let lit var sign = { var; sign }
let neg_lit l = { l with sign = not l.sign }

(* --- Direct CNF via NNF + distribution --- *)

let rec cnf_of_nnf = function
  | Prop.Top -> []
  | Prop.Bot -> [ [] ]
  | Prop.Var v -> [ [ lit v true ] ]
  | Prop.Not (Prop.Var v) -> [ [ lit v false ] ]
  | Prop.And (a, b) -> cnf_of_nnf a @ cnf_of_nnf b
  | Prop.Or (a, b) ->
      let ca = cnf_of_nnf a and cb = cnf_of_nnf b in
      List.concat_map (fun c1 -> List.map (fun c2 -> c1 @ c2) cb) ca
  | Prop.Not _ | Prop.Implies _ | Prop.Iff _ ->
      invalid_arg "cnf_of_nnf: input not in NNF"

let cnf_of_prop f = cnf_of_nnf (Prop.nnf f)

(* --- Tseitin transformation --- *)

let tseitin f =
  let counter = ref 0 in
  let clauses = ref [] in
  let emit c = clauses := c :: !clauses in
  let fresh () =
    incr counter;
    Printf.sprintf "_ts%d" !counter
  in
  (* Returns a literal equivalent to the subformula. *)
  let rec go f =
    match f with
    | Prop.Var v -> lit v true
    | Prop.Top ->
        let x = fresh () in
        emit [ lit x true ];
        lit x true
    | Prop.Bot ->
        let x = fresh () in
        emit [ lit x false ];
        lit x true
    | Prop.Not a -> neg_lit (go a)
    | Prop.And (a, b) ->
        let la = go a and lb = go b in
        let x = lit (fresh ()) true in
        (* x <-> la & lb *)
        emit [ neg_lit x; la ];
        emit [ neg_lit x; lb ];
        emit [ x; neg_lit la; neg_lit lb ];
        x
    | Prop.Or (a, b) ->
        let la = go a and lb = go b in
        let x = lit (fresh ()) true in
        emit [ neg_lit x; la; lb ];
        emit [ x; neg_lit la ];
        emit [ x; neg_lit lb ];
        x
    | Prop.Implies (a, b) -> go (Prop.Or (Prop.Not a, b))
    | Prop.Iff (a, b) ->
        let la = go a and lb = go b in
        let x = lit (fresh ()) true in
        emit [ neg_lit x; neg_lit la; lb ];
        emit [ neg_lit x; la; neg_lit lb ];
        emit [ x; la; lb ];
        emit [ x; neg_lit la; neg_lit lb ];
        x
  in
  let root = go f in
  emit [ root ];
  List.rev !clauses

(* --- DPLL --- *)

(* Solver counters (catalogue in DESIGN.md). *)
let c_clauses = Argus_obs.Counter.make "sat.clauses"
let c_vars = Argus_obs.Counter.make "sat.vars"
let c_decisions = Argus_obs.Counter.make "sat.decisions"
let c_unit_props = Argus_obs.Counter.make "sat.unit_propagations"
let c_pure = Argus_obs.Counter.make "sat.pure_eliminations"
let c_conflicts = Argus_obs.Counter.make "sat.conflicts"

module Smap = Map.Make (String)

type assignment = bool Smap.t

let lit_value (asg : assignment) l =
  match Smap.find_opt l.var asg with
  | None -> None
  | Some b -> Some (Bool.equal b l.sign)

(* Simplify a clause under the assignment: [None] when satisfied,
   [Some remaining] otherwise. *)
let simplify_clause asg clause =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | l :: rest -> (
        match lit_value asg l with
        | Some true -> None
        | Some false -> go acc rest
        | None -> go (l :: acc) rest)
  in
  go [] clause

exception Conflict

let simplify asg clauses =
  List.filter_map
    (fun c ->
      match simplify_clause asg c with
      | None -> None
      | Some [] -> raise Conflict
      | Some c -> Some c)
    clauses

let find_unit clauses =
  List.find_map (function [ l ] -> Some l | _ -> None) clauses

let find_pure clauses =
  let polarity = Hashtbl.create 16 in
  List.iter
    (fun c ->
      List.iter
        (fun l ->
          match Hashtbl.find_opt polarity l.var with
          | None -> Hashtbl.add polarity l.var (Some l.sign)
          | Some (Some s) when Bool.equal s l.sign -> ()
          | Some (Some _) -> Hashtbl.replace polarity l.var None
          | Some None -> ())
        c)
    clauses;
  Hashtbl.fold
    (fun var pol acc ->
      match (acc, pol) with
      | Some _, _ -> acc
      | None, Some sign -> Some (lit var sign)
      | None, None -> acc)
    polarity None

let rec dpll asg clauses =
  match clauses with
  | [] -> Some asg
  | _ when List.exists (fun c -> c = []) clauses ->
      Argus_obs.Counter.incr c_conflicts;
      None
  | _ -> (
      match find_unit clauses with
      | Some l ->
          Argus_obs.Counter.incr c_unit_props;
          assign asg clauses l
      | None -> (
          match find_pure clauses with
          | Some l ->
              Argus_obs.Counter.incr c_pure;
              assign asg clauses l
          | None -> (
              match clauses with
              | (l :: _) :: _ -> (
                  Argus_obs.Counter.incr c_decisions;
                  match assign asg clauses l with
                  | Some _ as r -> r
                  | None -> assign asg clauses (neg_lit l))
              | _ -> assert false)))

and assign asg clauses l =
  let asg = Smap.add l.var l.sign asg in
  match simplify asg clauses with
  | clauses -> dpll asg clauses
  | exception Conflict ->
      Argus_obs.Counter.incr c_conflicts;
      None

let cnf_vars clauses =
  List.fold_left
    (fun acc c -> List.fold_left (fun acc l -> Smap.add l.var true acc) acc c)
    Smap.empty clauses

let solve clauses =
  Argus_obs.Span.with_ ~name:"sat.solve" @@ fun () ->
  Argus_obs.Counter.add c_clauses (List.length clauses);
  Argus_obs.Counter.add c_vars (Smap.cardinal (cnf_vars clauses));
  match dpll Smap.empty clauses with
  | None -> None
  | Some asg ->
      (* Complete the assignment over all variables that occur. *)
      let all = cnf_vars clauses in
      let completed =
        Smap.mapi
          (fun v _ ->
            match Smap.find_opt v asg with Some b -> b | None -> true)
          all
      in
      Some (Smap.bindings completed)

let satisfiable f = solve (tseitin f) <> None
let valid f = not (satisfiable (Prop.Not f))
let entails premises conclusion =
  not (satisfiable (Prop.And (Prop.conj premises, Prop.Not conclusion)))

let equivalent a b = valid (Prop.Iff (a, b))

let models f =
  match solve (tseitin f) with
  | None -> None
  | Some asg ->
      let fvars = Prop.vars f in
      Some
        (List.map
           (fun v ->
             match List.assoc_opt v asg with
             | Some b -> (v, b)
             | None -> (v, true))
           fvars)

let count_models f =
  let fvars = Prop.vars f in
  let n = List.length fvars in
  if n > 24 then invalid_arg "count_models: too many variables";
  let arr = Array.of_list fvars in
  let count = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let valuation v =
      let rec idx i = if arr.(i) = v then i else idx (i + 1) in
      let i = idx 0 in
      mask land (1 lsl i) <> 0
    in
    if Prop.eval valuation f then incr count
  done;
  !count
