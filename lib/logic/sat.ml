module Budget = Argus_rt.Budget
module Fault = Argus_rt.Fault

type literal = { var : string; sign : bool }
type clause = literal list
type cnf = clause list

let lit var sign = { var; sign }
let neg_lit l = { l with sign = not l.sign }

(* --- Direct CNF via NNF + distribution --- *)

let rec cnf_of_nnf = function
  | Prop.Top -> []
  | Prop.Bot -> [ [] ]
  | Prop.Var v -> [ [ lit v true ] ]
  | Prop.Not (Prop.Var v) -> [ [ lit v false ] ]
  | Prop.And (a, b) -> cnf_of_nnf a @ cnf_of_nnf b
  | Prop.Or (a, b) ->
      let ca = cnf_of_nnf a and cb = cnf_of_nnf b in
      List.concat_map (fun c1 -> List.map (fun c2 -> c1 @ c2) cb) ca
  | Prop.Not _ | Prop.Implies _ | Prop.Iff _ ->
      invalid_arg "cnf_of_nnf: input not in NNF"

let cnf_of_prop f = cnf_of_nnf (Prop.nnf f)

(* --- Tseitin transformation --- *)

let tseitin f =
  let counter = ref 0 in
  let clauses = ref [] in
  let emit c = clauses := c :: !clauses in
  let fresh () =
    incr counter;
    Printf.sprintf "_ts%d" !counter
  in
  (* Returns a literal equivalent to the subformula. *)
  let rec go f =
    match f with
    | Prop.Var v -> lit v true
    | Prop.Top ->
        let x = fresh () in
        emit [ lit x true ];
        lit x true
    | Prop.Bot ->
        let x = fresh () in
        emit [ lit x false ];
        lit x true
    | Prop.Not a -> neg_lit (go a)
    | Prop.And (a, b) ->
        let la = go a and lb = go b in
        let x = lit (fresh ()) true in
        (* x <-> la & lb *)
        emit [ neg_lit x; la ];
        emit [ neg_lit x; lb ];
        emit [ x; neg_lit la; neg_lit lb ];
        x
    | Prop.Or (a, b) ->
        let la = go a and lb = go b in
        let x = lit (fresh ()) true in
        emit [ neg_lit x; la; lb ];
        emit [ x; neg_lit la ];
        emit [ x; neg_lit lb ];
        x
    | Prop.Implies (a, b) -> go (Prop.Or (Prop.Not a, b))
    | Prop.Iff (a, b) ->
        let la = go a and lb = go b in
        let x = lit (fresh ()) true in
        emit [ neg_lit x; neg_lit la; lb ];
        emit [ neg_lit x; la; neg_lit lb ];
        emit [ x; la; lb ];
        emit [ x; neg_lit la; neg_lit lb ];
        x
  in
  let root = go f in
  emit [ root ];
  List.rev !clauses

(* --- DPLL --- *)

(* Solver counters (catalogue in DESIGN.md). *)
let c_clauses = Argus_obs.Counter.make "sat.clauses"
let c_vars = Argus_obs.Counter.make "sat.vars"
let c_decisions = Argus_obs.Counter.make "sat.decisions"
let c_unit_props = Argus_obs.Counter.make "sat.unit_propagations"
let c_pure = Argus_obs.Counter.make "sat.pure_eliminations"
let c_conflicts = Argus_obs.Counter.make "sat.conflicts"

(* The solver works on interned variables and int-encoded literals:
   variable [v] (0-based) is literal [2v] positive and [2v+1] negative,
   so negation is [lxor 1] and the variable is [lsr 1].  The assignment
   is one int array plus an undo trail; clause state never needs undo
   because the two watched literals of each clause (kept in positions 0
   and 1, MiniSat-style) satisfy the invariant "watched literals are
   not false, or the clause is satisfied" at every decision level. *)

exception Unsat

(* Raised (and caught inside [solve]) when the budget runs out
   mid-search: the search stops where it stands and [solve] answers
   [None] with the budget marked exhausted — callers that passed a
   budget must treat the answer as unknown once
   [Budget.exhausted] is set. *)
exception Stopped

type solver = {
  nvars : int;
  names : string array;
  value : int array;  (** per variable: 0 unknown, 1 true, -1 false *)
  trail : int array;  (** literal codes, in assignment order *)
  mutable trail_n : int;
  mutable qhead : int;  (** propagation frontier into [trail] *)
  clauses : int array array;  (** clauses with >= 2 literals *)
  watches : int list array;  (** literal code -> watching clause indices *)
}

let lit_value s l =
  let v = s.value.(l lsr 1) in
  if v = 0 then 0 else if l land 1 = 0 then v else -v

(* Record [l] as true.  Raises [Unsat] on contradiction with the
   current assignment (only possible for top-level enqueues; during
   search the callers check first). *)
let assign s l =
  match lit_value s l with
  | 1 -> ()
  | -1 -> raise Unsat
  | _ ->
      s.value.(l lsr 1) <- (if l land 1 = 0 then 1 else -1);
      s.trail.(s.trail_n) <- l;
      s.trail_n <- s.trail_n + 1

let undo_to s mark =
  for i = mark to s.trail_n - 1 do
    s.value.(s.trail.(i) lsr 1) <- 0
  done;
  s.trail_n <- mark;
  s.qhead <- mark

(* Propagate everything queued on the trail; false on conflict. *)
let propagate budget s =
  let ok = ref true in
  while !ok && s.qhead < s.trail_n do
    if not (Budget.tick budget ~engine:"sat") then raise Stopped;
    let l = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    let fl = l lxor 1 in
    let ws = s.watches.(fl) in
    s.watches.(fl) <- [];
    let rec process = function
      | [] -> ()
      | ci :: rest -> (
          let c = s.clauses.(ci) in
          (* Normalise so the falsified watch sits in position 1. *)
          if c.(0) = fl then begin
            c.(0) <- c.(1);
            c.(1) <- fl
          end;
          if lit_value s c.(0) = 1 then begin
            (* Clause already satisfied by the other watch. *)
            s.watches.(fl) <- ci :: s.watches.(fl);
            process rest
          end
          else
            let len = Array.length c in
            let k = ref 2 in
            while !k < len && lit_value s c.(!k) = -1 do
              incr k
            done;
            if !k < len then begin
              (* Found a non-false literal: move the watch there. *)
              c.(1) <- c.(!k);
              c.(!k) <- fl;
              s.watches.(c.(1)) <- ci :: s.watches.(c.(1));
              process rest
            end
            else begin
              s.watches.(fl) <- ci :: s.watches.(fl);
              match lit_value s c.(0) with
              | -1 ->
                  (* All literals false: conflict.  Put the unvisited
                     watchers back before bailing out. *)
                  List.iter
                    (fun cj -> s.watches.(fl) <- cj :: s.watches.(fl))
                    rest;
                  Argus_obs.Counter.incr c_conflicts;
                  ok := false
              | _ ->
                  Argus_obs.Counter.incr c_unit_props;
                  assign s c.(0);
                  process rest
            end)
    in
    process ws
  done;
  !ok

let next_unassigned s =
  let rec go v = if v >= s.nvars then None else if s.value.(v) = 0 then Some v else go (v + 1) in
  go 0

let rec search budget s =
  if not (propagate budget s) then false
  else
    match next_unassigned s with
    | None -> true
    | Some v ->
        Fault.point "sat.decide";
        if not (Budget.tick budget ~engine:"sat") then raise Stopped;
        Argus_obs.Counter.incr c_decisions;
        let mark = s.trail_n in
        assign s (2 * v);
        if search budget s then true
        else begin
          undo_to s mark;
          assign s ((2 * v) + 1);
          if search budget s then true
          else begin
            undo_to s mark;
            false
          end
        end

let solve ?(budget = Budget.unlimited) input_clauses =
  Argus_obs.Span.with_ ~name:"sat.solve" @@ fun () ->
  Argus_obs.Counter.add c_clauses (List.length input_clauses);
  (* Intern the variables of this CNF into 0..nvars-1, assigning ids as
     literals are first encountered (one pass — hashing the variable
     strings is the bulk of preprocessing, so each occurrence is hashed
     exactly once).  Encode: sort + dedupe each clause, drop
     tautologies, split off units.  An empty clause is immediately
     unsatisfiable. *)
  let ids = Hashtbl.create 64 in
  let rev_names = ref [] in
  let nvars = ref 0 in
  let code l =
    let v =
      match Hashtbl.find_opt ids l.var with
      | Some v -> v
      | None ->
          let v = !nvars in
          Hashtbl.add ids l.var v;
          rev_names := l.var :: !rev_names;
          incr nvars;
          v
    in
    (2 * v) + if l.sign then 0 else 1
  in
  (* Dedup and tautology detection without sorting (the watch scheme
     does not care about literal order): stamp each literal code with
     the clause number as the clause is scanned — a repeated stamp is a
     duplicate, a stamp on the negation makes the clause tautological.
     A tautological clause is dropped but its remaining variables are
     still interned, so the model covers every variable of the input. *)
  let stamps = ref (Array.make 64 (-1)) in
  let ensure l =
    if l >= Array.length !stamps then begin
      let bigger = Array.make (2 * (l + 1)) (-1) in
      Array.blit !stamps 0 bigger 0 (Array.length !stamps);
      stamps := bigger
    end
  in
  let clause_no = ref 0 in
  let encoded =
    List.filter_map
      (fun c ->
        let ci = !clause_no in
        incr clause_no;
        let rec scan lits kept n taut =
          match lits with
          | [] -> if taut then None else Some (kept, n)
          | l0 :: rest ->
              let l = code l0 in
              if taut then scan rest kept n true
              else begin
                ensure (l lor 1);
                let st = !stamps in
                if st.(l lxor 1) = ci then scan rest kept n true
                else if st.(l) = ci then scan rest kept n false
                else begin
                  st.(l) <- ci;
                  scan rest (l :: kept) (n + 1) false
                end
              end
        in
        match scan c [] 0 false with
        | None -> None
        | Some (kept, n) ->
            let arr = Array.make n 0 in
            List.iteri (fun i l -> arr.(i) <- l) kept;
            Some arr)
      input_clauses
  in
  let nvars = !nvars in
  Argus_obs.Counter.add c_vars nvars;
  let names = Array.make nvars "" in
  List.iteri (fun i v -> names.(nvars - 1 - i) <- v) !rev_names;
  let s =
    {
      nvars;
      names;
      value = Array.make nvars 0;
      trail = Array.make (max nvars 1) 0;
      trail_n = 0;
      qhead = 0;
      clauses =
        Array.of_list (List.filter (fun c -> Array.length c >= 2) encoded);
      watches = Array.make (2 * max nvars 1) [];
    }
  in
  match
    if List.exists (fun c -> Array.length c = 0) encoded then begin
      Argus_obs.Counter.incr c_conflicts;
      raise Unsat
    end;
    (* Top-level unit clauses are facts. *)
    List.iter
      (fun c ->
        if Array.length c = 1 then begin
          Argus_obs.Counter.incr c_unit_props;
          assign s c.(0)
        end)
      encoded;
    Array.iteri
      (fun ci c ->
        s.watches.(c.(0)) <- ci :: s.watches.(c.(0));
        s.watches.(c.(1)) <- ci :: s.watches.(c.(1)))
      s.clauses;
    (* Pure-literal preprocessing: a variable with a single polarity
       across the CNF can be assigned that polarity up front. *)
    let occurs_pos = Array.make (max nvars 1) false in
    let occurs_neg = Array.make (max nvars 1) false in
    Array.iter
      (Array.iter (fun l ->
           if l land 1 = 0 then occurs_pos.(l lsr 1) <- true
           else occurs_neg.(l lsr 1) <- true))
      s.clauses;
    for v = 0 to nvars - 1 do
      if s.value.(v) = 0 && occurs_pos.(v) <> occurs_neg.(v) then begin
        Argus_obs.Counter.incr c_pure;
        assign s (if occurs_pos.(v) then 2 * v else (2 * v) + 1)
      end
    done;
    search budget s
  with
  | true ->
      let model = ref [] in
      for v = nvars - 1 downto 0 do
        model := (s.names.(v), s.value.(v) = 1) :: !model
      done;
      Some (List.sort (fun (a, _) (b, _) -> String.compare a b) !model)
  | false -> None
  | exception Unsat -> None
  | exception Stopped -> None

(* --- The PR-1 solver, retained as a differential-testing oracle ---

   Persistent-map assignments and clause-list rebuilding at every
   decision: simple, obviously correct, and what the array solver above
   is property-tested against.  It does not touch the engine
   counters. *)
module Naive = struct
  module Smap = Map.Make (String)

  type assignment = bool Smap.t

  let lit_value (asg : assignment) l =
    match Smap.find_opt l.var asg with
    | None -> None
    | Some b -> Some (Bool.equal b l.sign)

  (* Simplify a clause under the assignment: [None] when satisfied,
     [Some remaining] otherwise. *)
  let simplify_clause asg clause =
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | l :: rest -> (
          match lit_value asg l with
          | Some true -> None
          | Some false -> go acc rest
          | None -> go (l :: acc) rest)
    in
    go [] clause

  exception Conflict

  let simplify asg clauses =
    List.filter_map
      (fun c ->
        match simplify_clause asg c with
        | None -> None
        | Some [] -> raise Conflict
        | Some c -> Some c)
      clauses

  let find_unit clauses =
    List.find_map (function [ l ] -> Some l | _ -> None) clauses

  let find_pure clauses =
    let polarity = Hashtbl.create 16 in
    List.iter
      (fun c ->
        List.iter
          (fun l ->
            match Hashtbl.find_opt polarity l.var with
            | None -> Hashtbl.add polarity l.var (Some l.sign)
            | Some (Some s) when Bool.equal s l.sign -> ()
            | Some (Some _) -> Hashtbl.replace polarity l.var None
            | Some None -> ())
          c)
      clauses;
    Hashtbl.fold
      (fun var pol acc ->
        match (acc, pol) with
        | Some _, _ -> acc
        | None, Some sign -> Some (lit var sign)
        | None, None -> acc)
      polarity None

  let rec dpll asg clauses =
    match clauses with
    | [] -> Some asg
    | _ when List.exists (fun c -> c = []) clauses -> None
    | _ -> (
        match find_unit clauses with
        | Some l -> assign asg clauses l
        | None -> (
            match find_pure clauses with
            | Some l -> assign asg clauses l
            | None -> (
                match clauses with
                | (l :: _) :: _ -> (
                    match assign asg clauses l with
                    | Some _ as r -> r
                    | None -> assign asg clauses (neg_lit l))
                | _ -> assert false)))

  and assign asg clauses l =
    let asg = Smap.add l.var l.sign asg in
    match simplify asg clauses with
    | clauses -> dpll asg clauses
    | exception Conflict -> None

  let cnf_vars clauses =
    List.fold_left
      (fun acc c -> List.fold_left (fun acc l -> Smap.add l.var true acc) acc c)
      Smap.empty clauses

  let solve clauses =
    (* One variable scan serves both the completion step and (in the
       instrumented solver) the counter. *)
    let all = cnf_vars clauses in
    match dpll Smap.empty clauses with
    | None -> None
    | Some asg ->
        (* Complete the assignment over all variables that occur. *)
        let completed =
          Smap.mapi
            (fun v _ ->
              match Smap.find_opt v asg with Some b -> b | None -> true)
            all
        in
        Some (Smap.bindings completed)
end

(* Four cheap deterministic valuations tried before building the
   Tseitin CNF.  Most queries on the fallacy-scan paths are satisfiable
   (consistent premise sets, non-equivalent formula pairs), and a
   single [Prop.eval] witness settles those without allocating clauses
   or running DPLL; unsatisfiable queries pay four linear evals and
   fall through.  The answer is unchanged: a witness valuation is a
   model. *)
let c_quick = Argus_obs.Counter.make "sat.quick_wins"
let hash_parity v = Hashtbl.hash (v : string) land 1 = 1

let quick_witness f =
  Prop.eval (fun _ -> true) f
  || Prop.eval (fun _ -> false) f
  || Prop.eval hash_parity f
  || Prop.eval (fun v -> not (hash_parity v)) f

(* Corpus scans and the fallacy checker ask [satisfiable] about the
   same formulas over and over (every pass over the 45 Greenwell
   instances re-poses structurally identical queries), so the answer is
   memoized.  The table is domain-local — each domain of a parallel
   scan keeps its own, so no locking and, the function being pure,
   identical results on any domain — and is reset once it reaches
   [memo_limit] entries to bound memory. *)
let c_memo = Argus_obs.Counter.make "sat.memo_hits"
let memo_limit = 4096

let memo_key : (Prop.t, bool) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let satisfiable_uncached ?budget f =
  if quick_witness f then begin
    Argus_obs.Counter.incr c_quick;
    true
  end
  else solve ?budget (tseitin f) <> None

let satisfiable ?(budget = Budget.unlimited) f =
  if Budget.is_limited budget then
    (* A budgeted answer may be a truncation artefact; keep it out of
       the memo so unbudgeted callers never inherit it. *)
    satisfiable_uncached ~budget f
  else
    let memo = Domain.DLS.get memo_key in
    match Hashtbl.find_opt memo f with
    | Some r ->
        Argus_obs.Counter.incr c_memo;
        r
    | None ->
        let r = satisfiable_uncached f in
        if Hashtbl.length memo >= memo_limit then Hashtbl.reset memo;
        Hashtbl.add memo f r;
        r

let valid ?budget f = not (satisfiable ?budget (Prop.Not f))

let entails ?budget premises conclusion =
  not (satisfiable ?budget (Prop.And (Prop.conj premises, Prop.Not conclusion)))

let equivalent ?budget a b = valid ?budget (Prop.Iff (a, b))

let models ?budget f =
  match solve ?budget (tseitin f) with
  | None -> None
  | Some asg ->
      let fvars = Prop.vars f in
      Some
        (List.map
           (fun v ->
             match List.assoc_opt v asg with
             | Some b -> (v, b)
             | None -> (v, true))
           fvars)

type count = Exact of int | At_least of int

let count_models ?(budget = Budget.unlimited) f =
  let fvars = Prop.vars f in
  let n = List.length fvars in
  if n > 24 then invalid_arg "count_models: too many variables";
  (* var -> bit index, precomputed instead of an O(n) scan per variable
     per valuation. *)
  let bit = Hashtbl.create (2 * n) in
  List.iteri (fun i v -> Hashtbl.replace bit v i) fvars;
  let count = ref 0 in
  (* A budget cut mid-enumeration means the remaining valuations were
     never evaluated, so the tally is a lower bound — reported as such
     rather than passed off as the exact count. *)
  let truncated = ref false in
  let mask = ref 0 in
  let last = (1 lsl n) - 1 in
  while (not !truncated) && !mask <= last do
    if not (Budget.tick budget ~engine:"sat") then truncated := true
    else begin
      let m = !mask in
      let valuation v = m land (1 lsl Hashtbl.find bit v) <> 0 in
      if Prop.eval valuation f then begin
        incr count;
        if not (Budget.note_solution budget ~engine:"sat") then
          truncated := true
      end;
      incr mask
    end
  done;
  if !truncated then At_least !count else Exact !count
