(** First-order terms and syntactic unification.

    Shared by the resolution engine (Figure 1's Prolog example) and the
    predicate-level fallacy lints.  Variables are capitalised in the
    concrete syntax, Prolog-style; here they are just tagged strings.

    Functor and constant names are interned ({!Argus_core.Symbol}) so
    unification compares ints, not strings.  The string-based
    constructors ({!app}, {!const}, the parser) intern on the way in;
    match sites that need the text back go through [Symbol.name].
    Variable names are deliberately {e not} interned: the resolution
    engine freshens clause variables with an unbounded counter, and the
    intern table never shrinks. *)

type t =
  | Var of string
  | App of Argus_core.Symbol.t * t list
      (** [App (f, [])] is a constant; [App (f, args)] a compound term.
          Atoms/predicates are terms whose head is the predicate symbol. *)

val var : string -> t
val const : string -> t
val app : string -> t list -> t

val app_sym : Argus_core.Symbol.t -> t list -> t
(** Like {!app} for an already-interned head (hot paths). *)

val equal : t -> t -> bool
val compare : t -> t -> int

val vars : t -> string list
(** Free variables in first-occurrence order, without duplicates. *)

val is_ground : t -> bool
val size : t -> int

module Subst : sig
  type term := t
  type t

  val empty : t
  val is_empty : t -> bool
  val bindings : t -> (string * term) list
  val find : string -> t -> term option

  val bind : string -> term -> t -> t
  (** Adds a binding and normalises the range of existing bindings so the
      substitution stays idempotent.  Assumes the occurs check passed. *)

  val apply : t -> term -> term
  (** Applies until fixpoint-free (substitutions are kept idempotent, so
      one pass suffices).  Shares unchanged subterms. *)

  val compose : t -> t -> t
  (** [compose s2 s1] applies [s1] first: [apply (compose s2 s1) t =
      apply s2 (apply s1 t)]. *)
end

val unify : t -> t -> Subst.t option
(** Most general unifier with occurs check, or [None]. *)

val unify_under : Subst.t -> t -> t -> Subst.t option
(** Unify under an existing substitution (used by resolution).
    Dereferences variables lazily against the substitution rather than
    instantiating both terms up front. *)

val rename : suffix:string -> t -> t
(** Renames every variable [X] to [X_suffix]; used to freshen clauses
    before resolution. *)

val pp : Format.formatter -> t -> unit
(** Prolog-ish: [f(a, X, g(Y))]. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parses the {!pp} syntax.  Tokens starting with an uppercase letter or
    [_] are variables; everything else is a functor or constant.
    Integers are allowed as constants. *)
