module Symbol = Argus_core.Symbol

type t = Var of string | App of Symbol.t * t list

let var v = Var v
let const c = App (Symbol.intern c, [])
let app f args = App (Symbol.intern f, args)
let app_sym f args = App (f, args)

let rec equal t1 t2 =
  match (t1, t2) with
  | Var v, Var u -> String.equal v u
  | App (f, args1), App (g, args2) ->
      Symbol.equal f g && List.equal equal args1 args2
  | Var _, App _ | App _, Var _ -> false

let compare = Stdlib.compare

let vars t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec go = function
    | Var v ->
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          out := v :: !out
        end
    | App (_, args) -> List.iter go args
  in
  go t;
  List.rev !out

let rec is_ground = function
  | Var _ -> false
  | App (_, args) -> List.for_all is_ground args

let rec size = function
  | Var _ -> 1
  | App (_, args) -> List.fold_left (fun acc a -> acc + size a) 1 args

(* Substitutions are newest-first association lists: resolution binds a
   handful of variables per clause use, and at those sizes a scan with
   [String.equal] beats a balanced map's allocation and rebalancing.
   Keys are unique — [bind] only ever adds an unbound variable, and a
   repeated [bind] shadows (newest first) rather than corrupting. *)
let rec assoc_find v = function
  | [] -> None
  | (u, t) :: rest -> if String.equal u v then Some t else assoc_find v rest

(* Applies [m] once, sharing unchanged subterms so substitution on
   mostly-ground terms allocates nothing. *)
let rec apply_map m t =
  match t with
  | Var v -> ( match assoc_find v m with Some u -> u | None -> t)
  | App (f, args) ->
      let changed = ref false in
      let args' =
        List.map
          (fun a ->
            let a' = apply_map m a in
            if a' != a then changed := true;
            a')
          args
      in
      if !changed then App (f, args') else t

let rec occurs v = function
  | Var u -> u = v
  | App (_, args) -> List.exists (occurs v) args

module Subst = struct
  type nonrec t = (string * t) list

  let empty = []
  let is_empty s = s = []

  let bindings s =
    (* Key-sorted, newest binding winning on (never-expected) shadowed
       keys — the contract the map representation used to provide. *)
    List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) s

  let find v s = assoc_find v s
  let apply s t = match s with [] -> t | _ -> apply_map s t

  let bind v t s =
    (* Keep the substitution idempotent.  Rewriting is the rare case —
       most binds introduce a variable no range term mentions — so scan
       (allocation-free) before rebuilding. *)
    let s =
      if List.exists (fun (_, u) -> occurs v u) s then
        let single = [ (v, t) ] in
        List.map (fun (u, w) -> (u, apply_map single w)) s
      else s
    in
    (v, t) :: s

  let compose s2 s1 =
    let s1' = List.map (fun (v, t) -> (v, apply_map s2 t)) s1 in
    s1'
    @ List.filter (fun (v, _) -> assoc_find v s1 = None) s2
end

(* Unification dereferences variables lazily instead of applying the
   whole substitution to both terms at every step: because [Subst.bind]
   keeps the substitution idempotent (no range term mentions a bound
   variable), a single lookup fully resolves a variable, and App nodes
   are traversed in place rather than rebuilt. *)
let unify_under s t1 t2 =
  let resolve sub t =
    match t with
    | Var v -> ( match assoc_find v sub with Some u -> u | None -> t)
    | App _ -> t
  in
  let rec go s t1 t2 =
    match s with
    | None -> None
    | Some sub -> (
        let t1 = resolve sub t1 and t2 = resolve sub t2 in
        match (t1, t2) with
        | Var v, Var u when String.equal v u -> s
        | Var v, t | t, Var v ->
            (* [t]'s root is unbound but its arguments may mention bound
               variables; resolve them now so the invariant holds. *)
            let t = Subst.apply sub t in
            if occurs v t then None else Some (Subst.bind v t sub)
        | App (f, args1), App (g, args2) ->
            if
              (not (Symbol.equal f g))
              || List.compare_lengths args1 args2 <> 0
            then None
            else List.fold_left2 go s args1 args2)
  in
  go (Some s) t1 t2

let unify t1 t2 = unify_under Subst.empty t1 t2

let rename ~suffix t =
  let suffix = "_" ^ suffix in
  let rec go = function
    | Var v -> Var (v ^ suffix)
    | App (f, args) -> App (f, List.map go args)
  in
  go t

let rec pp ppf = function
  | Var v -> Format.pp_print_string ppf v
  | App (f, []) -> Symbol.pp ppf f
  | App (f, args) ->
      Format.fprintf ppf "%a(%a)" Symbol.pp f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp)
        args

let to_string t = Format.asprintf "%a" pp t

(* --- Parser --- *)

exception Parse_error of string

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

type token = Ident of string | Lparen | Rparen | Comma

let tokenise s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) (Lparen :: acc)
      | ')' -> go (i + 1) (Rparen :: acc)
      | ',' -> go (i + 1) (Comma :: acc)
      | c when is_ident_char c ->
          let j = ref i in
          while !j < n && is_ident_char s.[!j] do
            incr j
          done;
          go !j (Ident (String.sub s i (!j - i)) :: acc)
      | c -> raise (Parse_error (Printf.sprintf "unexpected character %C" c))
  in
  go 0 []

let is_variable_name name =
  String.length name > 0
  && ((name.[0] >= 'A' && name.[0] <= 'Z') || name.[0] = '_')

let parse_tokens toks =
  let toks = ref toks in
  let advance () =
    match !toks with
    | [] -> raise (Parse_error "unexpected end of input")
    | t :: rest ->
        toks := rest;
        t
  in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let rec p_term () =
    match advance () with
    | Ident name -> (
        if is_variable_name name then Var name
        else
          match peek () with
          | Some Lparen ->
              ignore (advance ());
              let args = p_args [] in
              app name args
          | _ -> const name)
    | _ -> raise (Parse_error "expected a term")
  and p_args acc =
    let t = p_term () in
    match advance () with
    | Comma -> p_args (t :: acc)
    | Rparen -> List.rev (t :: acc)
    | _ -> raise (Parse_error "expected ',' or ')'")
  in
  let t = p_term () in
  (match !toks with
  | [] -> ()
  | _ -> raise (Parse_error "trailing input after term"));
  t

let of_string s =
  match parse_tokens (tokenise s) with
  | t -> Ok t
  | exception Parse_error msg -> Error msg
