(* Bit-parallel truth tables for small formulas.  A formula set over
   [n <= 5] variables has at most 32 distinct valuations, so a whole
   truth table fits in one native int: bit [r] is the formula's value
   under valuation [r] (variable [i] true iff bit [i] of [r] is set).
   Every connective is then a single word operation across all
   valuations at once, and satisfiability / equivalence / entailment
   become mask comparisons — no search, no allocation on the query
   path.

   The table is always 32 rows wide regardless of how many of the five
   variable slots are in use: unused variables just duplicate rows,
   which no supported query can observe (they all compare masks built
   over the same universe).  That keeps the variable columns compile-
   time constants and the environment build allocation-light — it
   matters, because {!Argus_fallacy.Formal} builds one per argument.

   This is the fast path the formal-fallacy detectors take for
   Greenwell-scale arguments (two or three atoms each); formulas with
   more variables, or budgeted queries (whose tick accounting the DPLL
   path owns), fall back to {!Sat}.  The answers are exact — a truth
   table is the semantics — so the fallback boundary never changes a
   verdict, which the differential tests in test/fallacy hold us to. *)

let max_vars = 5
let universe = 0xFFFFFFFF

(* Column [i]: the 32 rows where variable [i] is true. *)
let cols = [| 0xAAAAAAAA; 0xCCCCCCCC; 0xF0F0F0F0; 0xFF00FF00; 0xFFFF0000 |]

type env = {
  n : int;  (** Variable slots in use. *)
  names : string array;  (** Length {!max_vars}; slots [>= n] unused. *)
}

let c_envs = Argus_obs.Counter.make "logic.mask_envs"

exception Overflow

let rec scan names n p =
  match p with
  | Prop.Top | Prop.Bot -> ()
  | Prop.Var v ->
      let k = !n in
      let rec find i =
        if i >= k then
          if k >= max_vars then raise Overflow
          else begin
            names.(k) <- v;
            n := k + 1
          end
        else if String.equal names.(i) v then ()
        else find (i + 1)
      in
      find 0
  | Prop.Not a -> scan names n a
  | Prop.And (a, b) | Prop.Or (a, b) | Prop.Implies (a, b) | Prop.Iff (a, b) ->
      scan names n a;
      scan names n b

let env props =
  let names = Array.make max_vars "" in
  let n = ref 0 in
  match List.iter (fun p -> scan names n p) props with
  | () ->
      Argus_obs.Counter.incr c_envs;
      Some { n = !n; names }
  | exception Overflow -> None

let var_col e v =
  let rec find i =
    if i >= e.n then invalid_arg ("Propmask.mask: unknown variable " ^ v)
    else if String.equal (Array.unsafe_get e.names i) v then
      Array.unsafe_get cols i
    else find (i + 1)
  in
  find 0

let rec mask e = function
  | Prop.Top -> universe
  | Prop.Bot -> 0
  | Prop.Var v -> var_col e v
  | Prop.Not a -> universe land lnot (mask e a)
  | Prop.And (a, b) -> mask e a land mask e b
  | Prop.Or (a, b) -> mask e a lor mask e b
  | Prop.Implies (a, b) -> (universe land lnot (mask e a)) lor mask e b
  | Prop.Iff (a, b) -> universe land lnot (mask e a lxor mask e b)

let satisfiable e f = mask e f <> 0
let valid e f = mask e f = universe
let equivalent e a b = mask e a = mask e b

let entails e premises conclusion =
  let p = List.fold_left (fun acc f -> acc land mask e f) universe premises in
  p land lnot (mask e conclusion) land universe = 0
