type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;
  message : string;
  loc : Loc.t option;
  subjects : Id.t list;
}

let make severity ?loc ?(subjects = []) ~code message =
  { severity; code; message; loc; subjects }

let error ?loc ?subjects ~code message =
  make Error ?loc ?subjects ~code message

let warning ?loc ?subjects ~code message =
  make Warning ?loc ?subjects ~code message

let info ?loc ?subjects ~code message = make Info ?loc ?subjects ~code message

let kf mk ?loc ?subjects ~code fmt =
  Format.kasprintf (fun message -> mk ?loc ?subjects ~code message) fmt

let errorf ?loc ?subjects ~code fmt = kf error ?loc ?subjects ~code fmt
let warningf ?loc ?subjects ~code fmt = kf warning ?loc ?subjects ~code fmt
let infof ?loc ?subjects ~code fmt = kf info ?loc ?subjects ~code fmt

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let severity_compare a b = Int.compare (severity_rank a) (severity_rank b)

let compare a b =
  let c = severity_compare a.severity b.severity in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c else String.compare a.message b.message

let has_errors ds = List.exists (fun d -> d.severity = Error) ds
let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)
let sort ds = List.stable_sort compare ds

let pp_severity ppf = function
  | Error -> Format.pp_print_string ppf "error"
  | Warning -> Format.pp_print_string ppf "warning"
  | Info -> Format.pp_print_string ppf "info"

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let loc_to_json (loc : Loc.t) =
  let pos (p : Loc.pos) =
    Json.Obj [ ("line", Json.int p.Loc.line); ("col", Json.int p.Loc.col) ]
  in
  Json.Obj
    [
      ("file", Json.Str loc.Loc.start.Loc.file);
      ("start", pos loc.Loc.start);
      ("stop", pos loc.Loc.stop);
    ]

let to_json d =
  Json.Obj
    [
      ("severity", Json.Str (severity_to_string d.severity));
      ("code", Json.Str d.code);
      ("message", Json.Str d.message);
      ( "loc",
        match d.loc with
        | Some loc when not (Loc.is_dummy loc) -> loc_to_json loc
        | Some _ | None -> Json.Null );
      ("subjects", Json.List (List.map (fun s -> Json.Str (Id.to_string s)) d.subjects));
    ]

let report_to_json ds =
  let ds = sort ds in
  Json.Obj
    [
      ("diagnostics", Json.List (List.map to_json ds));
      ("errors", Json.int (count Error ds));
      ("warnings", Json.int (count Warning ds));
      ("infos", Json.int (count Info ds));
    ]

let pp ppf d =
  (match d.loc with
  | Some loc when not (Loc.is_dummy loc) -> Format.fprintf ppf "%a: " Loc.pp loc
  | Some _ | None -> ());
  Format.fprintf ppf "%a [%s] %s" pp_severity d.severity d.code d.message;
  match d.subjects with
  | [] -> ()
  | subjects ->
      Format.fprintf ppf " (%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Id.pp)
        subjects

let pp_report ppf ds =
  let ds = sort ds in
  List.iter (fun d -> Format.fprintf ppf "%a@." pp d) ds;
  Format.fprintf ppf "%d error(s), %d warning(s), %d info@." (count Error ds)
    (count Warning ds) (count Info ds)
