(* [spare] holds the unused half of a Box-Muller pair (see [gaussian]);
   it is part of the generator state so copies and streams stay
   deterministic. *)
type t = { mutable state : int64; mutable spare : float; mutable has_spare : bool }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_state state = { state; spare = 0.0; has_spare = false }

let create seed = of_state (mix (Int64.of_int seed))
let copy t = { state = t.state; spare = t.spare; has_spare = t.has_spare }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = of_state (mix (next_int64 t))

let stream t k =
  if k < 0 then invalid_arg "Prng.stream: index must be non-negative";
  (* Independent per-index generator derived from [t]'s current state
     without advancing it: jump the state k+1 gammas ahead and mix, so
     distinct indices land on well-separated states and parallel trials
     draw the same numbers whatever order (or domain) they run in. *)
  let z = Int64.add t.state (Int64.mul golden_gamma (Int64.of_int (k + 1))) in
  of_state (mix z)

let float t =
  (* 53 high bits to a double in [0,1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  int_of_float (float t *. float_of_int n)

let bernoulli t p =
  let p = Float.max 0.0 (Float.min 1.0 p) in
  float t < p

let gaussian t ~mean ~sd =
  (* Box-Muller yields a pair per (log, sqrt, cos/sin) evaluation; the
     sine half is banked in [t.spare] so every other call costs only a
     multiply-add.  The simulations draw normals in the hundreds of
     thousands, making this the single hottest code path. *)
  let z =
    if t.has_spare then begin
      t.has_spare <- false;
      t.spare
    end
    else begin
      let u1 = Float.max 1e-300 (float t) in
      let u2 = float t in
      let r = sqrt (-2.0 *. log u1) in
      let a = 2.0 *. Float.pi *. u2 in
      t.spare <- r *. sin a;
      t.has_spare <- true;
      r *. cos a
    end
  in
  mean +. (sd *. z)

let lognormal t ~mu ~sigma = exp (gaussian t ~mean:mu ~sd:sigma)

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Prng.exponential: rate must be positive";
  -.log (Float.max 1e-300 (1.0 -. float t)) /. rate

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
