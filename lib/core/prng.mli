(** Deterministic pseudo-random numbers (SplitMix64).

    The experiment simulations must be exactly reproducible from their
    seed — EXPERIMENTS.md records numbers that a re-run has to
    regenerate bit-for-bit — so they use this self-contained generator
    rather than [Random]. *)

type t

val create : int -> t
(** Generator seeded from an integer. *)

val copy : t -> t
val split : t -> t
(** A statistically independent generator derived from [t] (advances
    [t]). *)

val stream : t -> int -> t
(** [stream t k] is an independent generator for trial index [k],
    derived from [t]'s current state {e without} advancing [t].  The
    mapping is pure — same [t] state and [k] give the same stream — so
    per-trial draws are identical whether trials run sequentially or
    split across domains.  @raise Invalid_argument if [k < 0]. *)

val next_int64 : t -> int64
val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** Uniform in [0, n).  @raise Invalid_argument if [n <= 0]. *)

val bernoulli : t -> float -> bool
(** True with the given probability (clamped to [0, 1]). *)

val gaussian : t -> mean:float -> sd:float -> float
(** Box–Muller. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** [exp] of a Gaussian — non-negative, right-skewed; the conventional
    model for task-completion times. *)

val exponential : t -> rate:float -> float
val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on an empty list. *)

val shuffle : t -> 'a array -> unit
