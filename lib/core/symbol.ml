type t = int

(* name -> handle, and handle -> name.  The reverse table is a growable
   array so [name] is an O(1) load.  Interning mutates both under a
   mutex so DSL parsing inside pool workers is safe; [name] reads the
   array without the lock — a symbol handed to another domain is always
   published through a synchronising channel (the pool's task queue),
   which makes its entry visible. *)
let table : (string, int) Hashtbl.t = Hashtbl.create 256
let names : string array ref = ref (Array.make 256 "")
let next = ref 0
let mu = Mutex.create ()

let intern s =
  Mutex.protect mu (fun () ->
      match Hashtbl.find_opt table s with
      | Some i -> i
      | None ->
          let i = !next in
          incr next;
          let cap = Array.length !names in
          if i >= cap then begin
            let bigger = Array.make (2 * cap) "" in
            Array.blit !names 0 bigger 0 cap;
            names := bigger
          end;
          !names.(i) <- s;
          Hashtbl.add table s i;
          i)

let name i = !names.(i)
let equal (a : int) (b : int) = a = b
let compare (a : int) (b : int) = Stdlib.compare a b
let hash (i : int) = i
let count () = !next
let pp ppf i = Format.pp_print_string ppf (name i)
