(** Globally interned names.

    A symbol is an [int] handle into a process-wide table mapping names
    to handles and back.  Interning the functor names of first-order
    terms makes equality, comparison and hashing O(1) int operations on
    the resolution hot path, instead of byte-by-byte string work.

    The table only ever grows; symbols are never freed.  Intern only
    names drawn from a bounded vocabulary (functors, predicates,
    constants) — never machine-generated fresh names (the resolution
    engine's freshened variables stay plain strings for exactly this
    reason). *)

type t = private int
(** The handle.  [private int] so the polymorphic comparison and
    hashing used on containing structures (e.g. whole terms) remain
    correct and cheap. *)

val intern : string -> t
(** Intern a name, returning its existing handle when already known. *)

val name : t -> string
(** The name a handle was interned from.  O(1). *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Orders by interning time, not alphabetically. *)

val hash : t -> int

val count : unit -> int
(** Number of distinct names interned so far (for tests and metrics). *)

val pp : Format.formatter -> t -> unit
(** Prints the name. *)
