(** Diagnostics emitted by the well-formedness checkers, the fallacy
    detectors and the DSL front end.

    Every checker in the toolkit reports through this one type so that
    the CLI, the tests and the experiment harness can treat findings
    uniformly.  A diagnostic has a machine-readable [code] (stable across
    releases, suitable for suppression lists), a severity, a
    human-readable message, and optionally a source span and the
    identifiers of the argument elements involved. *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;  (** e.g. ["gsn/goal-under-solution"]. *)
  message : string;
  loc : Loc.t option;
  subjects : Id.t list;  (** Elements the finding is about, if any. *)
}

val error : ?loc:Loc.t -> ?subjects:Id.t list -> code:string -> string -> t
val warning : ?loc:Loc.t -> ?subjects:Id.t list -> code:string -> string -> t
val info : ?loc:Loc.t -> ?subjects:Id.t list -> code:string -> string -> t

val errorf :
  ?loc:Loc.t ->
  ?subjects:Id.t list ->
  code:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** Like {!error} with a format string; [warningf] and [infof] likewise. *)

val warningf :
  ?loc:Loc.t ->
  ?subjects:Id.t list ->
  code:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val infof :
  ?loc:Loc.t ->
  ?subjects:Id.t list ->
  code:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val severity_compare : severity -> severity -> int
(** Orders [Error < Warning < Info] (most severe first). *)

val compare : t -> t -> int
(** Severity-major ordering, then code, then message — a stable order for
    reporting. *)

val has_errors : t list -> bool
val count : severity -> t list -> int
val sort : t list -> t list

val pp_severity : Format.formatter -> severity -> unit
val pp : Format.formatter -> t -> unit
val pp_report : Format.formatter -> t list -> unit
(** One diagnostic per line, sorted, followed by a summary count line. *)

val severity_to_string : severity -> string

val to_json : t -> Json.t
(** [{"severity", "code", "message", "loc" (or null), "subjects"}] —
    the machine-readable face of a finding, shared with the trace
    output ([argus check --format json]). *)

val report_to_json : t list -> Json.t
(** Sorted diagnostics plus the severity tallies, mirroring
    {!pp_report}. *)
