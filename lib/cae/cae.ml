module Id = Argus_core.Id
module Diagnostic = Argus_core.Diagnostic
module Gsn = Argus_gsn

type node_type = Claim | Argument | Evidence_ref

type node = {
  id : Id.t;
  node_type : node_type;
  text : string;
  premise : bool;
}

type t = {
  node_map : node Id.Map.t;
  node_order : Id.t list;
  links : (Id.t * Id.t) list;  (** (supported, supporter). *)
}

let empty = { node_map = Id.Map.empty; node_order = []; links = [] }

let claim ?(premise = false) id text =
  { id = Id.of_string id; node_type = Claim; text; premise }

let argument id text =
  { id = Id.of_string id; node_type = Argument; text; premise = false }

let evidence_ref id text =
  { id = Id.of_string id; node_type = Evidence_ref; text; premise = false }

let add_node n t =
  let order =
    if Id.Map.mem n.id t.node_map then t.node_order else t.node_order @ [ n.id ]
  in
  { t with node_map = Id.Map.add n.id n t.node_map; node_order = order }

let support ~src ~dst t =
  let l = (src, dst) in
  if List.mem l t.links then t else { t with links = t.links @ [ l ] }

let of_nodes ?(links = []) ns =
  let t = List.fold_left (fun t n -> add_node n t) empty ns in
  List.fold_left
    (fun t (src, dst) ->
      support ~src:(Id.of_string src) ~dst:(Id.of_string dst) t)
    t links

let nodes t = List.filter_map (fun id -> Id.Map.find_opt id t.node_map) t.node_order
let find id t = Id.Map.find_opt id t.node_map

let supporters id t =
  List.filter_map
    (fun (s, d) -> if Id.equal s id then Some d else None)
    t.links

let size t = Id.Map.cardinal t.node_map
let links t = t.links

let has_cycle t =
  let rec visit path visited id =
    if List.exists (Id.equal id) path then true
    else if Id.Set.mem id visited then false
    else
      List.exists (visit (id :: path) visited) (supporters id t)
  in
  List.exists (fun id -> visit [] Id.Set.empty id) t.node_order

let check t =
  let out = ref [] in
  let add d = out := d :: !out in
  List.iter
    (fun (src, dst) ->
      match (find src t, find dst t) with
      | None, _ | _, None ->
          add
            (Diagnostic.errorf ~code:"cae/dangling-link" ~subjects:[ src; dst ]
               "support link references a missing node")
      | Some s, Some d -> (
          match (s.node_type, d.node_type) with
          | Claim, Argument | Argument, (Claim | Evidence_ref) -> ()
          | Claim, Evidence_ref ->
              (* Direct evidence under a claim is tolerated by some CAE
                 dialects but not the published methodology. *)
              add
                (Diagnostic.errorf ~code:"cae/bad-support"
                   ~subjects:[ src; dst ]
                   "evidence must support a claim via an argument node")
          | _ ->
              add
                (Diagnostic.errorf ~code:"cae/bad-support"
                   ~subjects:[ src; dst ]
                   "a %s cannot be supported by a %s"
                   (match s.node_type with
                   | Claim -> "claim"
                   | Argument -> "argument"
                   | Evidence_ref -> "evidence")
                   (match d.node_type with
                   | Claim -> "claim"
                   | Argument -> "argument"
                   | Evidence_ref -> "evidence"))))
    t.links;
  if has_cycle t then
    add (Diagnostic.error ~code:"cae/cycle" "the support relation is cyclic");
  let incoming id =
    List.exists (fun (_, d) -> Id.equal d id) t.links
  in
  let root_claims =
    List.filter
      (fun n -> n.node_type = Claim && not (incoming n.id))
      (nodes t)
  in
  if size t > 0 && root_claims = [] then
    add (Diagnostic.error ~code:"cae/no-root" "no top-level claim");
  List.iter
    (fun n ->
      if String.trim n.text = "" then
        add
          (Diagnostic.errorf ~code:"cae/empty-text" ~subjects:[ n.id ]
             "node has no text");
      let sup = supporters n.id t in
      match n.node_type with
      | Claim ->
          let args =
            List.filter
              (fun sid ->
                match find sid t with
                | Some { node_type = Argument; _ } -> Some sid <> None
                | _ -> false)
              sup
          in
          if (not n.premise) && args = [] then
            add
              (Diagnostic.errorf ~code:"cae/claim-without-argument"
                 ~subjects:[ n.id ]
                 "claim is not a premise and has no supporting argument");
          if List.length args > 1 then
            add
              (Diagnostic.warningf ~code:"cae/multiple-arguments"
                 ~subjects:[ n.id ]
                 "claim has %d argument nodes (the methodology expects one)"
                 (List.length args))
      | Argument ->
          if sup = [] then
            add
              (Diagnostic.errorf ~code:"cae/empty-argument" ~subjects:[ n.id ]
                 "argument node cites no evidence or subclaims")
      | Evidence_ref ->
          if sup <> [] then
            add
              (Diagnostic.errorf ~code:"cae/evidence-not-leaf"
                 ~subjects:[ n.id ] "evidence must be a leaf"))
    (nodes t);
  Diagnostic.sort (List.rev !out)

let is_well_formed t = not (Diagnostic.has_errors (check t))

(* --- GSN conversion --- *)

let of_gsn structure =
  let open Gsn in
  let t = ref empty in
  let add n = t := add_node n !t in
  let link src dst = t := support ~src ~dst !t in
  (* Nodes. *)
  List.iter
    (fun n ->
      let id = Id.to_string n.Node.id in
      match n.Node.node_type with
      | Node.Goal | Node.Away_goal _ ->
          add (claim id n.Node.text)
      | Node.Strategy -> add (argument id n.Node.text)
      | Node.Solution -> add (evidence_ref id n.Node.text)
      | Node.Context | Node.Assumption | Node.Justification ->
          add (claim ~premise:true id n.Node.text)
      | Node.Module_ref _ | Node.Contract _ ->
          add (claim ~premise:true id n.Node.text))
    (Structure.nodes structure);
  (* Links; goals supported directly by non-strategies get a synthesised
     argument node. *)
  let gen = Id.Gen.create ~prefix:"A_synth" () in
  let used =
    Structure.nodes structure
    |> List.map (fun n -> n.Node.id)
    |> Id.Set.of_list
  in
  List.iter
    (fun n ->
      match n.Node.node_type with
      | Node.Goal | Node.Away_goal _ ->
          let kids =
            Structure.children Structure.Supported_by n.Node.id structure
          in
          let strategies, others =
            List.partition
              (fun k ->
                match Structure.find k structure with
                | Some { Node.node_type = Node.Strategy; _ } -> true
                | _ -> false)
              kids
          in
          List.iter (fun s -> link n.Node.id s) strategies;
          if others <> [] then begin
            let aid = Id.Gen.fresh_avoiding gen used in
            add (argument (Id.to_string aid) "direct support");
            link n.Node.id aid;
            List.iter (fun o -> link aid o) others
          end
      | Node.Strategy ->
          List.iter
            (fun k -> link n.Node.id k)
            (Structure.children Structure.Supported_by n.Node.id structure)
      | Node.Solution | Node.Context | Node.Assumption | Node.Justification
      | Node.Module_ref _ | Node.Contract _ ->
          ())
    (Structure.nodes structure);
  (* Contextual elements hang off their anchors as cited premises. *)
  List.iter
    (fun (kind, src, dst) ->
      match kind with
      | Structure.In_context_of ->
          (* Route through the claim's argument if there is one?  The
             simplest faithful move: premise claims support the anchor's
             argument node when the anchor is a strategy, else attach to
             the synthesised/first argument below the goal... attach
             directly: premise claims are allowed below arguments only,
             so attach under the anchor when it is an argument, else
             leave unattached (it remains a root premise). *)
          (match Structure.find src structure with
          | Some { Node.node_type = Node.Strategy; _ } -> link src dst
          | _ -> ())
      | Structure.Supported_by -> ())
    (Structure.links structure);
  !t

let to_gsn t =
  let open Gsn in
  let s = ref Structure.empty in
  List.iter
    (fun n ->
      let id = Id.to_string n.id in
      let gnode =
        match n.node_type with
        | Claim when n.premise -> Gsn.Node.assumption id n.text
        | Claim -> Gsn.Node.goal id n.text
        | Argument -> Gsn.Node.strategy id n.text
        | Evidence_ref -> Gsn.Node.solution id n.text
      in
      s := Structure.add_node gnode !s)
    (nodes t);
  (* A GSN strategy cannot be supported directly by a solution, so an
     argument node citing evidence gets an interposed goal. *)
  let gen = Id.Gen.create ~prefix:"G_ev" () in
  let used = nodes t |> List.map (fun n -> n.id) |> Id.Set.of_list in
  List.iter
    (fun (src, dst) ->
      match (find src t, find dst t) with
      | Some _, Some { node_type = Claim; premise = true; _ } ->
          s := Structure.connect Structure.In_context_of ~src ~dst !s
      | Some { node_type = Argument; _ }, Some { node_type = Evidence_ref; text; _ }
        ->
          let gid = Id.Gen.fresh_avoiding gen used in
          let goal =
            Gsn.Node.make ~id:gid ~node_type:Gsn.Node.Goal
              (Printf.sprintf "The cited evidence (%s) is valid and applicable"
                 text)
          in
          s := Structure.add_node goal !s;
          s := Structure.connect Structure.Supported_by ~src ~dst:gid !s;
          s := Structure.connect Structure.Supported_by ~src:gid ~dst !s
      | Some _, Some _ ->
          s := Structure.connect Structure.Supported_by ~src ~dst !s
      | _ -> ())
    t.links;
  !s

let pp_outline ppf t =
  let incoming id = List.exists (fun (_, d) -> Id.equal d id) t.links in
  let rec go indent visited id =
    match find id t with
    | None -> ()
    | Some n ->
        let tag =
          match n.node_type with
          | Claim when n.premise -> "premise"
          | Claim -> "claim"
          | Argument -> "argument"
          | Evidence_ref -> "evidence"
        in
        Format.fprintf ppf "%s[%s] %a: %s@." indent tag Id.pp n.id n.text;
        if not (Id.Set.mem id visited) then
          List.iter
            (go (indent ^ "  ") (Id.Set.add id visited))
            (supporters id t)
  in
  List.iter
    (fun n -> if not (incoming n.id) then go "" Id.Set.empty n.id)
    (nodes t)
