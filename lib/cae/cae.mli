(** The Claims–Argument–Evidence notation (Bishop & Bloomfield).

    CAE structures a case as {e claims} supported by {e arguments}
    (inference steps) that cite {e evidence} and/or subclaims.  It is
    the second of the two graphical notations the paper's Section II.B
    surveys; the toolkit supports both so the reading-audience
    experiment can render the same case either way.

    Well-formedness here follows the published methodology: every claim
    that is not a stipulated premise is supported by exactly one
    argument node; argument nodes cite at least one item of evidence or
    subclaim; evidence is a leaf; the support relation is acyclic. *)

type node_type = Claim | Argument | Evidence_ref

type node = {
  id : Argus_core.Id.t;
  node_type : node_type;
  text : string;
  premise : bool;
      (** A claim stipulated rather than argued (side-conditions). *)
}

type t

val empty : t
val claim : ?premise:bool -> string -> string -> node
val argument : string -> string -> node
val evidence_ref : string -> string -> node

val add_node : node -> t -> t
val support : src:Argus_core.Id.t -> dst:Argus_core.Id.t -> t -> t
(** [support ~src ~dst]: [dst] supports [src]. *)

val of_nodes : ?links:(string * string) list -> node list -> t
val nodes : t -> node list
val find : Argus_core.Id.t -> t -> node option
val supporters : Argus_core.Id.t -> t -> Argus_core.Id.t list
val size : t -> int

val links : t -> (Argus_core.Id.t * Argus_core.Id.t) list
(** All [(supported, supporter)] pairs in insertion order — the raw
    relation {!check} walks, exposed for the fused array-IR checker. *)

val check : t -> Argus_core.Diagnostic.t list
(** Codes under ["cae/"]: ["cae/dangling-link"],
    ["cae/claim-without-argument"], ["cae/multiple-arguments"],
    ["cae/empty-argument"], ["cae/evidence-not-leaf"],
    ["cae/bad-support"], ["cae/cycle"], ["cae/no-root"],
    ["cae/empty-text"]. *)

val is_well_formed : t -> bool

val of_gsn : Argus_gsn.Structure.t -> t
(** Notation translation: goals become claims, strategies become
    argument nodes, solutions become evidence references; contextual
    elements become premise claims attached where they applied.  A goal
    supported directly by goals or solutions (no strategy) gets a
    synthesised argument node, as the CAE methodology requires. *)

val to_gsn : t -> Argus_gsn.Structure.t
(** Claims become goals, arguments strategies, evidence references
    solutions; premise claims become assumptions in context.  Because a
    GSN strategy cannot be supported directly by a solution, an argument
    node citing evidence gets an interposed validity goal. *)

val pp_outline : Format.formatter -> t -> unit
