module Budget = Argus_rt.Budget
module Fault = Argus_rt.Fault

type t =
  | True
  | False
  | Atom of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Next of t
  | Until of t * t
  | Release of t * t
  | Eventually of t
  | Always of t

let atom a = Atom a

let atoms f =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec go = function
    | True | False -> ()
    | Atom a ->
        if not (Hashtbl.mem seen a) then begin
          Hashtbl.add seen a ();
          out := a :: !out
        end
    | Not g | Next g | Eventually g | Always g -> go g
    | And (a, b) | Or (a, b) | Implies (a, b) | Until (a, b) | Release (a, b) ->
        go a;
        go b
  in
  go f;
  List.rev !out

let rec size = function
  | True | False | Atom _ -> 1
  | Not g | Next g | Eventually g | Always g -> 1 + size g
  | And (a, b) | Or (a, b) | Implies (a, b) | Until (a, b) | Release (a, b) ->
      1 + size a + size b

let equal = Stdlib.( = )

module Trace = struct
  type state = string list
  type t = { prefix : state array; loop : state array }

  let make ~prefix ~loop =
    if loop = [] then invalid_arg "Ltl.Trace.make: empty loop";
    { prefix = Array.of_list prefix; loop = Array.of_list loop }

  let state t i =
    let p = Array.length t.prefix and l = Array.length t.loop in
    if i < 0 then invalid_arg "Ltl.Trace.state: negative position"
    else if i < p then t.prefix.(i)
    else t.loop.((i - p) mod l)

  let length t = Array.length t.prefix + Array.length t.loop
end

(* Checker counters (catalogue in DESIGN.md): positions labelled per
   subformula in the lasso fixpoint, fixpoint sweeps, and steps of
   finite-trace evaluation. *)
let c_positions = Argus_obs.Counter.make "ltl.positions_labelled"
let c_sweeps = Argus_obs.Counter.make "ltl.fixpoint_sweeps"
let c_memo_hits = Argus_obs.Counter.make "ltl.memo_hits"
let c_finite_checks = Argus_obs.Counter.make "ltl.finite_checks"
let c_finite_steps = Argus_obs.Counter.make "ltl.trace_steps"

(* Fixpoint labelling over the lasso.  Positions are 0..n-1 where
   n = |prefix| + |loop|; the successor of the last position wraps to the
   start of the loop.  For formulas past a size threshold, each
   structurally distinct subformula is labelled once per call: repeated
   subterms (common after [nnf]) hit a memo table instead of re-running
   their fixpoints.  Small formulas — the overwhelmingly common case in
   goal models — skip the table: hashing a five-node formula costs more
   than relabelling it.  The gate sits at 8 so that combined refutation
   queries (a conjunction of goal formulas, as {!Argus_kaos} builds)
   land on the memo side and their repeated atoms actually hit. *)
let memo_threshold = 8

(* Raised (and caught at the [label]/[holds_finite] top level) when the
   budget runs out mid-labelling; the caller gets an all-false result
   with the budget marked exhausted, and must treat it as unknown. *)
exception Stopped

let label ?(budget = Budget.unlimited) tr f =
  Fault.point "ltl.label";
  let p = Array.length tr.Trace.prefix in
  let n = Trace.length tr in
  let succ i = if i = n - 1 then p else i + 1 in
  let atom_true i a = List.mem a (Trace.state tr i) in
  let memo : (t, bool array) Hashtbl.t Lazy.t =
    lazy (Hashtbl.create 32)
  in
  (* Counter traffic is batched into locals and flushed once per
     [label] call: a sharded increment costs ~10x a plain one, and the
     fixpoint loops would otherwise pay it per sweep (measurably so on
     trace-heavy callers like Argus_kaos). *)
  let labelled = ref 0 and sweeps = ref 0 and memo_hits = ref 0 in
  let rec go_direct f = compute go_direct f
  and go_memo f =
    let memo = Lazy.force memo in
    match Hashtbl.find_opt memo f with
    | Some v ->
        incr memo_hits;
        v
    | None ->
        let v = compute go_memo f in
        Hashtbl.add memo f v;
        v
  (* Least fixpoint of v(i) = base(i) or (hold(i) and v(succ i)); when
     [hold] is [None] it is constantly true (the U-expansion of F,
     evaluated directly so F never materialises an [Until (True, _)]
     node just to label an all-true array). *)
  and lfp ?hold base =
    let v = Array.make n false in
    let holds i = match hold with None -> true | Some h -> h.(i) in
    let changed = ref true in
    while !changed do
      if not (Budget.ticks budget ~engine:"ltl" n) then raise Stopped;
      incr sweeps;
      changed := false;
      for i = n - 1 downto 0 do
        let v' = base.(i) || (holds i && v.(succ i)) in
        if v' && not v.(i) then begin
          v.(i) <- true;
          changed := true
        end
      done
    done;
    v
  (* Greatest fixpoint of v(i) = base(i) and (release(i) or v(succ i));
     [release] [None] means constantly false (the R-expansion of G). *)
  and gfp ?release base =
    let v = Array.make n true in
    let releases i =
      match release with None -> false | Some r -> r.(i)
    in
    let changed = ref true in
    while !changed do
      if not (Budget.ticks budget ~engine:"ltl" n) then raise Stopped;
      incr sweeps;
      changed := false;
      for i = n - 1 downto 0 do
        let v' = base.(i) && (releases i || v.(succ i)) in
        if (not v') && v.(i) then begin
          v.(i) <- false;
          changed := true
        end
      done
    done;
    v
  and compute go f =
    if not (Budget.ticks budget ~engine:"ltl" n) then raise Stopped;
    incr labelled;
    match f with
    | True -> Array.make n true
    | False -> Array.make n false
    | Atom a -> Array.init n (fun i -> atom_true i a)
    | Not g -> Array.map not (go g)
    | And (a, b) -> Array.map2 ( && ) (go a) (go b)
    | Or (a, b) -> Array.map2 ( || ) (go a) (go b)
    | Implies (a, b) -> Array.map2 (fun x y -> (not x) || y) (go a) (go b)
    | Next g ->
        let lg = go g in
        Array.init n (fun i -> lg.(succ i))
    | Eventually g -> lfp (go g)
    | Always g -> gfp (go g)
    | Until (a, b) -> lfp ~hold:(go a) (go b)
    | Release (a, b) -> gfp ~release:(go a) (go b)
  in
  let go = if size f <= memo_threshold then go_direct else go_memo in
  Argus_obs.Span.with_ ~name:"ltl.label" (fun () ->
      Fun.protect
        ~finally:(fun () ->
          let s = Argus_obs.Counter.current_shard () in
          Argus_obs.Counter.shard_add s c_positions (!labelled * n);
          Argus_obs.Counter.shard_add s c_sweeps !sweeps;
          Argus_obs.Counter.shard_add s c_memo_hits !memo_hits)
        (fun () -> try go f with Stopped -> Array.make n false))

let holds_at ?budget tr i f =
  if i < 0 then invalid_arg "Ltl.holds_at: negative position";
  let p = Array.length tr.Trace.prefix and n = Trace.length tr in
  let i = if i < n then i else p + ((i - p) mod (n - p)) in
  (label ?budget tr f).(i)

let holds ?budget tr f = (label ?budget tr f).(0)

let holds_finite ?(budget = Budget.unlimited) states f =
  if states = [] then invalid_arg "Ltl.holds_finite: empty trace";
  let arr = Array.of_list states in
  let n = Array.length arr in
  Argus_obs.Counter.incr c_finite_checks;
  Argus_obs.Counter.add c_finite_steps n;
  let rec at i f =
    if not (Budget.tick budget ~engine:"ltl") then raise Stopped;
    match f with
    | True -> true
    | False -> false
    | Atom a -> List.mem a arr.(i)
    | Not g -> not (at i g)
    | And (a, b) -> at i a && at i b
    | Or (a, b) -> at i a || at i b
    | Implies (a, b) -> (not (at i a)) || at i b
    | Next g -> i + 1 < n && at (i + 1) g
    | Eventually g ->
        let rec ex j = j < n && (at j g || ex (j + 1)) in
        ex i
    | Always g ->
        let rec fa j = j >= n || (at j g && fa (j + 1)) in
        fa i
    | Until (a, b) ->
        let rec un j = j < n && (at j b || (at j a && un (j + 1))) in
        un i
    | Release (a, b) -> not (at i (Until (Not a, Not b)))
  in
  try at 0 f with Stopped -> false

let rec nnf = function
  | (True | False | Atom _) as f -> f
  | And (a, b) -> And (nnf a, nnf b)
  | Or (a, b) -> Or (nnf a, nnf b)
  | Implies (a, b) -> Or (nnf (Not a), nnf b)
  | Next g -> Next (nnf g)
  | Until (a, b) -> Until (nnf a, nnf b)
  | Release (a, b) -> Release (nnf a, nnf b)
  | Eventually g -> Until (True, nnf g)
  | Always g -> Release (False, nnf g)
  | Not f -> (
      match f with
      | True -> False
      | False -> True
      | Atom _ -> Not f
      | Not g -> nnf g
      | And (a, b) -> Or (nnf (Not a), nnf (Not b))
      | Or (a, b) -> And (nnf (Not a), nnf (Not b))
      | Implies (a, b) -> And (nnf a, nnf (Not b))
      | Next g -> Next (nnf (Not g))
      | Until (a, b) -> Release (nnf (Not a), nnf (Not b))
      | Release (a, b) -> Until (nnf (Not a), nnf (Not b))
      | Eventually g -> Release (False, nnf (Not g))
      | Always g -> Until (True, nnf (Not g)))

let rec rewrite f =
  match f with
  | Not True -> False
  | Not False -> True
  | Not (Not a) -> a
  | And (True, a) | And (a, True) -> a
  | And (False, _) | And (_, False) -> False
  | And (a, b) when a = b -> a
  | Or (False, a) | Or (a, False) -> a
  | Or (True, _) | Or (_, True) -> True
  | Or (a, b) when a = b -> a
  | Implies (True, a) -> a
  | Implies (False, _) -> True
  | Implies (_, True) -> True
  | Implies (a, False) -> rewrite (Not a)
  | Implies (a, b) when a = b -> True
  | Next True -> True
  | Next False -> False
  | Eventually (Eventually a) -> rewrite (Eventually a)
  | Eventually True -> True
  | Eventually False -> False
  | Always (Always a) -> rewrite (Always a)
  | Always True -> True
  | Always False -> False
  | Until (_, False) -> False
  | Until (_, True) -> True
  | Until (False, b) -> b
  | Until (True, b) -> rewrite (Eventually b)
  | Release (_, True) -> True
  | Release (_, False) -> False
  | Release (True, b) -> b
  | Release (False, b) -> rewrite (Always b)
  | f -> f

let rec simplify f =
  let f' =
    match f with
    | True | False | Atom _ -> f
    | Not g -> rewrite (Not (simplify g))
    | And (a, b) -> rewrite (And (simplify a, simplify b))
    | Or (a, b) -> rewrite (Or (simplify a, simplify b))
    | Implies (a, b) -> rewrite (Implies (simplify a, simplify b))
    | Next g -> rewrite (Next (simplify g))
    | Until (a, b) -> rewrite (Until (simplify a, simplify b))
    | Release (a, b) -> rewrite (Release (simplify a, simplify b))
    | Eventually g -> rewrite (Eventually (simplify g))
    | Always g -> rewrite (Always (simplify g))
  in
  if f' = f then f else simplify f'

(* Precedence: Implies 1, Or 2, And 3, Until/Release 4, unary 5. *)
let rec pp_prec prec ppf f =
  let paren p body =
    if p < prec then Format.fprintf ppf "(%t)" body else body ppf
  in
  match f with
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Atom a -> Format.pp_print_string ppf a
  | Not g -> paren 5 (fun ppf -> Format.fprintf ppf "~%a" (pp_prec 5) g)
  | Next g -> paren 5 (fun ppf -> Format.fprintf ppf "X %a" (pp_prec 5) g)
  | Eventually g ->
      paren 5 (fun ppf -> Format.fprintf ppf "F %a" (pp_prec 5) g)
  | Always g -> paren 5 (fun ppf -> Format.fprintf ppf "G %a" (pp_prec 5) g)
  | Until (a, b) ->
      paren 4 (fun ppf ->
          Format.fprintf ppf "%a U %a" (pp_prec 5) a (pp_prec 4) b)
  | Release (a, b) ->
      paren 4 (fun ppf ->
          Format.fprintf ppf "%a R %a" (pp_prec 5) a (pp_prec 4) b)
  | And (a, b) ->
      paren 3 (fun ppf ->
          Format.fprintf ppf "%a & %a" (pp_prec 3) a (pp_prec 4) b)
  | Or (a, b) ->
      paren 2 (fun ppf ->
          Format.fprintf ppf "%a | %a" (pp_prec 2) a (pp_prec 3) b)
  | Implies (a, b) ->
      paren 1 (fun ppf ->
          Format.fprintf ppf "%a -> %a" (pp_prec 2) a (pp_prec 1) b)

let pp ppf f = pp_prec 0 ppf f
let to_string f = Format.asprintf "%a" pp f

(* --- Parser --- *)

type token =
  | TAtom of string
  | TTrue
  | TFalse
  | TNot
  | TAnd
  | TOr
  | TImplies
  | TG
  | TF
  | TX
  | TU
  | TR
  | TLparen
  | TRparen

exception Parse_error of string

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let tokenise s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) (TLparen :: acc)
      | ')' -> go (i + 1) (TRparen :: acc)
      | '~' | '!' -> go (i + 1) (TNot :: acc)
      | '&' -> go (i + 1) (TAnd :: acc)
      | '|' -> go (i + 1) (TOr :: acc)
      | '-' when i + 1 < n && s.[i + 1] = '>' -> go (i + 2) (TImplies :: acc)
      | '=' when i + 1 < n && s.[i + 1] = '>' -> go (i + 2) (TImplies :: acc)
      | c when is_ident_char c ->
          let j = ref i in
          while !j < n && is_ident_char s.[!j] do
            incr j
          done;
          let word = String.sub s i (!j - i) in
          let tok =
            match word with
            | "G" -> TG
            | "F" -> TF
            | "X" -> TX
            | "U" -> TU
            | "R" -> TR
            | "true" -> TTrue
            | "false" -> TFalse
            | "not" -> TNot
            | "and" -> TAnd
            | "or" -> TOr
            | _ -> TAtom word
          in
          go !j (tok :: acc)
      | c -> raise (Parse_error (Printf.sprintf "unexpected character %C" c))
  in
  go 0 []

let parse tokens =
  let toks = ref tokens in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let advance () =
    match !toks with
    | [] -> raise (Parse_error "unexpected end of input")
    | t :: rest ->
        toks := rest;
        t
  in
  let rec p_imp () =
    let lhs = p_or () in
    match peek () with
    | Some TImplies ->
        ignore (advance ());
        Implies (lhs, p_imp ())
    | _ -> lhs
  and p_or () =
    let lhs = p_and () in
    let rec loop acc =
      match peek () with
      | Some TOr ->
          ignore (advance ());
          loop (Or (acc, p_and ()))
      | _ -> acc
    in
    loop lhs
  and p_and () =
    let lhs = p_until () in
    let rec loop acc =
      match peek () with
      | Some TAnd ->
          ignore (advance ());
          loop (And (acc, p_until ()))
      | _ -> acc
    in
    loop lhs
  and p_until () =
    let lhs = p_unary () in
    match peek () with
    | Some TU ->
        ignore (advance ());
        Until (lhs, p_until ())
    | Some TR ->
        ignore (advance ());
        Release (lhs, p_until ())
    | _ -> lhs
  and p_unary () =
    match peek () with
    | Some TNot ->
        ignore (advance ());
        Not (p_unary ())
    | Some TG ->
        ignore (advance ());
        Always (p_unary ())
    | Some TF ->
        ignore (advance ());
        Eventually (p_unary ())
    | Some TX ->
        ignore (advance ());
        Next (p_unary ())
    | _ -> p_atom ()
  and p_atom () =
    match advance () with
    | TAtom a -> Atom a
    | TTrue -> True
    | TFalse -> False
    | TLparen ->
        let f = p_imp () in
        (match advance () with
        | TRparen -> f
        | _ -> raise (Parse_error "expected ')'"))
    | _ -> raise (Parse_error "expected an atom or '('")
  in
  let f = p_imp () in
  (match !toks with
  | [] -> ()
  | _ -> raise (Parse_error "trailing input"));
  f

let of_string s =
  match parse (tokenise s) with
  | f -> Ok f
  | exception Parse_error msg -> Error msg

let of_string_exn s =
  match of_string s with Ok f -> f | Error msg -> failwith msg
