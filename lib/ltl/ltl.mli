(** Linear temporal logic with lasso-trace semantics.

    Brunel and Cazin formalise safety-argument claims in LTL — e.g. the
    claim that the Detect-and-Avoid function is correct becomes
    [G (d_obstacle < d_min -> (d_obstacle <> 0 U d_obstacle > d_min))].
    Comparisons are propositional atoms here (["obstacle_close"], ...);
    the temporal structure is what this module checks.

    Semantics are over lasso traces (a finite prefix followed by a
    repeated loop), which represent the ultimately-periodic behaviours a
    bounded model checker explores, and over finite traces (LTLf-style,
    with a strong Next) for checking recorded operational data.

    Resource governance: the checking entry points take an optional
    [?budget] ({!Argus_rt.Budget.t}, default unlimited), ticked per
    position labelled and per fixpoint sweep.  On exhaustion the check
    answers [false] — callers that passed a budget must check
    {!Argus_rt.Budget.exhausted} and treat the answer as unknown when
    set.  The ["ltl.label"] fault probe fires at each labelling
    (DESIGN.md §10). *)

type t =
  | True
  | False
  | Atom of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Next of t  (** X *)
  | Until of t * t  (** U (strong) *)
  | Release of t * t  (** R, dual of U *)
  | Eventually of t  (** F *)
  | Always of t  (** G *)

val atom : string -> t
val atoms : t -> string list
(** First-occurrence order, no duplicates. *)

val size : t -> int
val equal : t -> t -> bool

module Trace : sig
  type state = string list
  (** Atoms true in the state; everything else is false. *)

  type t = private { prefix : state array; loop : state array }
  (** An infinite trace [prefix · loop^ω]; [loop] is non-empty. *)

  val make : prefix:state list -> loop:state list -> t
  (** @raise Invalid_argument if [loop] is empty. *)

  val state : t -> int -> state
  (** State at position [i >= 0], unrolling the loop. *)

  val length : t -> int
  (** [Array.length prefix + Array.length loop] — the number of distinct
      positions. *)
end

val holds : ?budget:Argus_rt.Budget.t -> Trace.t -> t -> bool
(** Truth at position 0 of the infinite unrolling, computed by
    fixpoint labelling over the lasso (least fixpoint for [Until],
    greatest for [Release]). *)

val holds_at : ?budget:Argus_rt.Budget.t -> Trace.t -> int -> t -> bool
(** Truth at an arbitrary position of the unrolling.
    @raise Invalid_argument if the position is negative. *)

val holds_finite :
  ?budget:Argus_rt.Budget.t -> Trace.state list -> t -> bool
(** LTLf semantics on a finite, non-looping trace: [Next] is strong
    (false at the last position), [Always]/[Until] quantify over the
    remaining positions only.  An empty trace satisfies only formulas
    that are propositionally [True]-valued... in fact
    @raise Invalid_argument on an empty trace, to avoid that edge case
    silently meaning anything. *)

val nnf : t -> t
(** Negation normal form using the U/R and F/G dualities. *)

val simplify : t -> t
(** Semantics-preserving syntactic rewrites: idempotence ([FF a = F a],
    [GG a = G a]), unit/absorption laws for the boolean connectives,
    [X True = True], [F False = False], [a U False = False],
    [True R a = G a], etc.  Applied bottom-up to a fixpoint. *)

val pp : Format.formatter -> t -> unit
(** ASCII rendering: [G p], [F p], [X p], [p U q], [p R q], plus the
    propositional connectives as in {!Argus_logic.Prop.pp}. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parser for the {!pp} syntax.  [G]/[F]/[X]/[U]/[R] are keywords
    (upper-case only, as standalone words); identifiers are atoms.
    Precedence, loosest to tightest: [->], [|], [&], [U]/[R]
    (right-associative), unary ([~], [G], [F], [X]). *)

val of_string_exn : string -> t
