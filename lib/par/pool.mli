(** Domain-based fork-join pool with chunked map / map-reduce.

    A pool owns [jobs - 1] persistent worker domains; each parallel
    operation is split into index chunks handed out through an atomic
    cursor, and the calling domain participates, so [jobs = 1] degrades
    to the plain sequential loop.  Results are written into
    index-addressed slots and reductions combine per-index results left
    to right, so every operation returns **bit-identical results
    regardless of the worker count** — the determinism contract the
    experiment harnesses and the batch checker rely on (DESIGN.md §9).

    Passing [?pool:None] (the default) to the mapping functions runs
    the plain sequential code with no domain machinery at all.

    Fault isolation: a chunk that raises never abandons the rest of the
    operation — every remaining chunk still runs, the first failure is
    re-raised after the join ({!map_array} family) or captured per item
    ({!map_result} family), and the [rt.tasks_failed] counter records
    each capture.  The ["pool.chunk"] (keyed by chunk start index) and
    ["pool.task"] (keyed by item index) fault probes of
    {!Argus_rt.Fault} let tests inject failures deterministically
    (DESIGN.md §10).

    Observability: each parallel operation runs under a ["par.map"]
    span on the calling domain and feeds the [par.tasks] (items),
    [par.chunks] (chunks handed out) and [par.steals] (chunks executed
    by a worker rather than the caller) counters. *)

type t

type failure = { exn : exn; backtrace : Printexc.raw_backtrace }

exception Abandoned
(** Placeholder failure for items whose chunk was lost to a
    pool-internal fault before any of its items ran; only ever seen
    inside {!map_result} [Error] payloads. *)

val default_jobs : unit -> int
(** [$ARGUS_JOBS] when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** Spawn a pool of [jobs] workers (default {!default_jobs}; values
    below 1 are clamped to 1, which spawns no domains). *)

val jobs : t -> int

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; the pool must not be
    used afterwards. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] (also on exception). *)

val map_array : ?pool:t -> ('a -> 'b) -> 'a array -> 'b array
val mapi_array : ?pool:t -> (int -> 'a -> 'b) -> 'a array -> 'b array
val init : ?pool:t -> int -> (int -> 'a) -> 'a array
val map_list : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list

val map_result : ?pool:t -> ('a -> 'b) -> 'a array -> ('b, failure) result array
(** Like {!map_array} but one item's exception (with its backtrace)
    becomes that item's [Error] instead of failing the whole map — the
    batch checker's isolation primitive.  Results stay in input order;
    items of a chunk lost to a pool-internal failure carry that
    failure (or {!Abandoned}). *)

val mapi_result :
  ?pool:t -> (int -> 'a -> 'b) -> 'a array -> ('b, failure) result array

val map_list_result :
  ?pool:t -> ('a -> 'b) -> 'a list -> ('b, failure) result list

val map_reduce :
  ?pool:t ->
  map:('a -> 'b) ->
  combine:('b -> 'b -> 'b) ->
  init:'b ->
  'a array ->
  'b
(** [combine] is applied to the mapped results left to right in index
    order starting from [init] — identical to
    [Array.fold_left (fun acc x -> combine acc (map x)) init], whatever
    the worker count. *)
