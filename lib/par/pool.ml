module Metrics = Argus_obs.Metrics
module Span = Argus_obs.Span
module Fault = Argus_rt.Fault

let c_tasks = Metrics.Counter.make "par.tasks"
let c_chunks = Metrics.Counter.make "par.chunks"
let c_steals = Metrics.Counter.make "par.steals"
let c_tasks_failed = Metrics.Counter.make "rt.tasks_failed"

type failure = { exn : exn; backtrace : Printexc.raw_backtrace }

exception Abandoned

(* One fork-join operation.  Chunks are handed out through [next]; a
   participant that drains the cursor past [total] is done.  [active]
   counts participants currently inside {!drain}; the op is complete
   when the cursor is exhausted and [active] is back to 0. *)
type op = {
  total : int;
  chunk : int;
  body : int -> int -> unit; (* [lo, hi) index range *)
  next : int Atomic.t;
  active : int Atomic.t;
  mutable failed : failure option;
}

type t = {
  jobs : int;
  mu : Mutex.t;
  work_cv : Condition.t; (* new op published, or shutdown *)
  done_cv : Condition.t; (* a participant left the current op *)
  mutable closed : bool;
  mutable current : op option;
  mutable seq : int; (* bumped per op so workers spot new work *)
  mutable domains : unit Domain.t array;
}

let default_jobs () =
  match Sys.getenv_opt "ARGUS_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let jobs t = t.jobs

(* Pull chunks until the cursor is exhausted.  A chunk that raises is
   captured (first failure wins) and the participant moves on to the
   next chunk — one bad task must not abandon the rest of the batch —
   and the caller decides after the join whether to re-raise.  The
   ["pool.chunk"] fault probe, keyed by the chunk's start index, sits
   in front of the body so tests can prove exactly that isolation. *)
let drain t op ~stealing =
  Atomic.incr op.active;
  let continue_ = ref true in
  while !continue_ do
    let lo = Atomic.fetch_and_add op.next op.chunk in
    if lo >= op.total then continue_ := false
    else begin
      Metrics.Counter.incr c_chunks;
      if stealing then Metrics.Counter.incr c_steals;
      try
        Fault.point ~key:(string_of_int lo) "pool.chunk";
        op.body lo (min op.total (lo + op.chunk))
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        Metrics.Counter.incr c_tasks_failed;
        Mutex.protect t.mu (fun () ->
            if op.failed = None then
              op.failed <- Some { exn = e; backtrace = bt })
    end
  done;
  ignore (Atomic.fetch_and_add op.active (-1));
  Mutex.protect t.mu (fun () -> Condition.broadcast t.done_cv)

let worker t =
  let last = ref 0 in
  let running = ref true in
  while !running do
    let job =
      Mutex.protect t.mu (fun () ->
          while (not t.closed) && t.seq = !last do
            Condition.wait t.work_cv t.mu
          done;
          if t.closed then None
          else begin
            last := t.seq;
            t.current
          end)
    in
    match job with
    | None -> if t.closed then running := false
    | Some op -> drain t op ~stealing:true
  done

let create ?jobs () =
  let jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  let t =
    {
      jobs;
      mu = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      closed = false;
      current = None;
      seq = 0;
      domains = [||];
    }
  in
  t.domains <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  let ds =
    Mutex.protect t.mu (fun () ->
        if t.closed then [||]
        else begin
          t.closed <- true;
          Condition.broadcast t.work_cv;
          let ds = t.domains in
          t.domains <- [||];
          ds
        end)
  in
  Array.iter Domain.join ds

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Run [body] over [0, total) in chunks across the pool; the calling
   domain participates, then waits for every worker to leave the op.
   Every chunk runs even when some fail; the first failure (if any) is
   returned for the caller to re-raise or record. *)
let run_capture t ~total ~body =
  if total <= 0 then None
  else
    Span.with_ ~name:"par.map" (fun () ->
        Metrics.Counter.add c_tasks total;
        let chunk = max 1 ((total + (4 * t.jobs) - 1) / (4 * t.jobs)) in
        let op =
          {
            total;
            chunk;
            body;
            next = Atomic.make 0;
            active = Atomic.make 0;
            failed = None;
          }
        in
        Mutex.protect t.mu (fun () ->
            t.current <- Some op;
            t.seq <- t.seq + 1;
            Condition.broadcast t.work_cv);
        drain t op ~stealing:false;
        Mutex.protect t.mu (fun () ->
            while not (Atomic.get op.next >= total && Atomic.get op.active = 0) do
              Condition.wait t.done_cv t.mu
            done;
            t.current <- None);
        op.failed)

let run t ~total ~body =
  match run_capture t ~total ~body with
  | Some { exn; backtrace } -> Printexc.raise_with_backtrace exn backtrace
  | None -> ()

let mapi_array ?pool f arr =
  let n = Array.length arr in
  match pool with
  | None -> Array.mapi f arr
  | Some t when t.jobs <= 1 || n <= 1 -> Array.mapi f arr
  | Some t ->
      (* Slot 0 is computed up front by the caller — it seeds the
         output array without an unsafe placeholder — and the pool
         covers indices [1, n). *)
      let out = Array.make n (f 0 arr.(0)) in
      run t ~total:(n - 1) ~body:(fun lo hi ->
          for j = lo to hi - 1 do
            out.(j + 1) <- f (j + 1) arr.(j + 1)
          done);
      out

let map_array ?pool f arr = mapi_array ?pool (fun _ x -> f x) arr
let init ?pool n f = mapi_array ?pool (fun i () -> f i) (Array.make n ())

let map_list ?pool f xs =
  match pool with
  | None -> List.map f xs
  | Some t when t.jobs <= 1 -> List.map f xs
  | Some _ -> Array.to_list (map_array ?pool f (Array.of_list xs))

let map_reduce ?pool ~map ~combine ~init:z arr =
  let mapped = map_array ?pool map arr in
  Array.fold_left combine z mapped

(* --- Fault-isolating maps --- *)

let abandoned = { exn = Abandoned; backtrace = Printexc.get_callstack 0 }

let mapi_result ?pool f arr =
  let wrap i x =
    try
      Fault.point ~key:(string_of_int i) "pool.task";
      Ok (f i x)
    with e ->
      let backtrace = Printexc.get_raw_backtrace () in
      Metrics.Counter.incr c_tasks_failed;
      Error { exn = e; backtrace }
  in
  let n = Array.length arr in
  match pool with
  | None -> Array.mapi wrap arr
  | Some t when t.jobs <= 1 || n <= 1 -> Array.mapi wrap arr
  | Some t ->
      (* Slots start out [Error Abandoned] so a chunk the pool itself
         loses (captured by [run_capture], e.g. a ["pool.chunk"] fault)
         surfaces as per-item failures rather than vanishing; slots of
         chunks that ran are overwritten with the per-item outcome. *)
      let out = Array.make n (Error abandoned) in
      let failed =
        run_capture t ~total:n ~body:(fun lo hi ->
            for i = lo to hi - 1 do
              out.(i) <- wrap i arr.(i)
            done)
      in
      (match failed with
      | Some f ->
          Array.iteri
            (fun i -> function
              | Error a when a == abandoned -> out.(i) <- Error f
              | _ -> ())
            out
      | None -> ());
      out

let map_result ?pool f arr = mapi_result ?pool (fun _ x -> f x) arr

let map_list_result ?pool f xs =
  Array.to_list (map_result ?pool f (Array.of_list xs))
