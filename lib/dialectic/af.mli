(** Abstract argumentation frameworks (Dung 1995).

    The substrate for Tolchinsky et al.'s deliberation dialogues
    (Section III.O of the paper): arguments and an attack relation, with
    the standard acceptability semantics.  Non-monotonic by
    construction — adding an attacker can retract a previously
    acceptable argument, which is what makes the dialogue games of
    {!Dialogue} meaningful.

    Semantics implemented via the standard labelling approach:
    {!grounded} is the least fixpoint of the characteristic function;
    {!preferred} and {!stable} by maximal-admissible search (the
    frameworks a dialogue builds are small, so exponential search is
    fine and is bounded by the argument count).

    Resource governance: the searching entry points take an optional
    [?budget] ({!Argus_rt.Budget.t}, default unlimited), ticked per
    candidate subset examined (and per fixpoint sweep for
    {!grounded}).  On exhaustion the search returns the extensions
    found so far — callers that passed a budget must check
    {!Argus_rt.Budget.exhausted} and treat the list as possibly
    incomplete.  The ["af.search"] fault probe fires on entry to
    {!preferred}/{!stable} (DESIGN.md §10). *)

type t

val empty : t
val add_argument : Argus_core.Id.t -> t -> t
val add_attack : attacker:Argus_core.Id.t -> target:Argus_core.Id.t -> t -> t
(** Endpoints are added implicitly if absent. *)

val of_lists :
  arguments:string list -> attacks:(string * string) list -> t

val arguments : t -> Argus_core.Id.t list
(** Insertion order. *)

val attackers : Argus_core.Id.t -> t -> Argus_core.Id.t list
val attacks_of : Argus_core.Id.t -> t -> Argus_core.Id.t list
val size : t -> int

val conflict_free : t -> Argus_core.Id.Set.t -> bool
val defends : t -> Argus_core.Id.Set.t -> Argus_core.Id.t -> bool
(** [defends af s a]: every attacker of [a] is attacked by some member
    of [s]. *)

val admissible : t -> Argus_core.Id.Set.t -> bool

val grounded : ?budget:Argus_rt.Budget.t -> t -> Argus_core.Id.Set.t
(** The (unique) grounded extension. *)

val preferred : ?budget:Argus_rt.Budget.t -> t -> Argus_core.Id.Set.t list
(** All maximal admissible sets; at least one (possibly empty). *)

val stable : ?budget:Argus_rt.Budget.t -> t -> Argus_core.Id.Set.t list
(** Conflict-free sets attacking every outside argument; may be none. *)

(** Acceptability status of one argument under grounded semantics. *)
type status = Accepted | Rejected | Undecided

val status : ?budget:Argus_rt.Budget.t -> t -> Argus_core.Id.t -> status
(** [Accepted] if in the grounded extension, [Rejected] if attacked by
    it, [Undecided] otherwise. *)

val pp : Format.formatter -> t -> unit
