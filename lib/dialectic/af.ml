module Id = Argus_core.Id
module Budget = Argus_rt.Budget
module Fault = Argus_rt.Fault

type t = {
  args : Id.t list;  (** Insertion order, no duplicates. *)
  attacks : (Id.t * Id.t) list;  (** (attacker, target), no duplicates. *)
}

let empty = { args = []; attacks = [] }

let add_argument a t =
  if List.exists (Id.equal a) t.args then t else { t with args = t.args @ [ a ] }

let add_attack ~attacker ~target t =
  let t = add_argument attacker (add_argument target t) in
  if List.mem (attacker, target) t.attacks then t
  else { t with attacks = t.attacks @ [ (attacker, target) ] }

let of_lists ~arguments ~attacks =
  let t =
    List.fold_left (fun t a -> add_argument (Id.of_string a) t) empty arguments
  in
  List.fold_left
    (fun t (a, b) ->
      add_attack ~attacker:(Id.of_string a) ~target:(Id.of_string b) t)
    t attacks

let arguments t = t.args
let size t = List.length t.args

let attackers a t =
  List.filter_map
    (fun (x, y) -> if Id.equal y a then Some x else None)
    t.attacks

let attacks_of a t =
  List.filter_map
    (fun (x, y) -> if Id.equal x a then Some y else None)
    t.attacks

let set_attacks t s a =
  List.exists (fun m -> List.exists (Id.equal a) (attacks_of m t)) (Id.Set.elements s)

let conflict_free t s =
  not
    (List.exists
       (fun (x, y) -> Id.Set.mem x s && Id.Set.mem y s)
       t.attacks)

let defends t s a =
  List.for_all (fun attacker -> set_attacks t s attacker) (attackers a t)

let admissible t s =
  conflict_free t s && Id.Set.for_all (fun a -> defends t s a) s

let grounded ?(budget = Budget.unlimited) t =
  (* Least fixpoint of F(S) = arguments defended by S.  At most |args|
     sweeps are needed; a budget cut returns the under-approximation
     reached so far (the fixpoint only grows), with the budget
     marked. *)
  let rec iterate s =
    if not (Budget.ticks budget ~engine:"af" (List.length t.args)) then s
    else
      let s' =
        List.filter (fun a -> defends t s a) t.args |> Id.Set.of_list
      in
      if Id.Set.equal s s' then s else iterate s'
  in
  iterate Id.Set.empty

(* Subsets as a lazy sequence (bit enumeration) so a budgeted search
   never materialises all 2^n of them. *)
let subsets args =
  let arr = Array.of_list args in
  let n = Array.length arr in
  Seq.init (1 lsl n) (fun mask ->
      let s = ref Id.Set.empty in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) <> 0 then s := Id.Set.add arr.(i) !s
      done;
      !s)

(* Candidates surviving [keep], ticking once per subset examined; stops
   (marking the budget) when the budget runs out. *)
let filter_subsets budget t keep =
  let rec go acc seq =
    match seq () with
    | Seq.Nil -> List.rev acc
    | Seq.Cons (s, rest) ->
        if not (Budget.tick budget ~engine:"af") then List.rev acc
        else go (if keep s then s :: acc else acc) rest
  in
  go [] (subsets t.args)

let preferred ?(budget = Budget.unlimited) t =
  Fault.point "af.search";
  if size t > 16 then
    invalid_arg "Af.preferred: framework too large for subset search";
  let admissibles = filter_subsets budget t (admissible t) in
  List.filter
    (fun s ->
      not
        (List.exists
           (fun s' -> (not (Id.Set.equal s s')) && Id.Set.subset s s')
           admissibles))
    admissibles

let stable ?(budget = Budget.unlimited) t =
  Fault.point "af.search";
  if size t > 16 then
    invalid_arg "Af.stable: framework too large for subset search";
  filter_subsets budget t (fun s ->
      conflict_free t s
      && List.for_all (fun a -> Id.Set.mem a s || set_attacks t s a) t.args)

type status = Accepted | Rejected | Undecided

let status ?budget t a =
  let g = grounded ?budget t in
  if Id.Set.mem a g then Accepted
  else if set_attacks t g a then Rejected
  else Undecided

let pp ppf t =
  Format.fprintf ppf "arguments: %s@."
    (String.concat ", " (List.map Id.to_string t.args));
  List.iter
    (fun (x, y) ->
      Format.fprintf ppf "  %a attacks %a@." Id.pp x Id.pp y)
    t.attacks
