(* The incremental assurance-case store: content-addressed cases,
   hash-consed node derivations, Merkle-style digests and memoized
   per-node verdicts.

   The heavy-traffic workload is many clients mutating large living
   cases, each edit needing a fast re-verdict — not one-shot batch
   checks.  A full re-check of a 100k-node case pays a full intern
   plus a full fused pass per edit; here an edit re-checks only its
   dirty cone:

   - {e Node arena.}  Per-payload text derivations (content words,
     the universal/propositional/ignorance predicates) are hash-consed
     in a bounded table keyed by payload digest, so re-interning a
     patched structure skips the text analysis for every payload seen
     before ([store.node_hits] counts hits).

   - {e Merkle digests.}  Each node carries a digest covering its
     payload, its id, and the digests of its SupportedBy /
     InContextOf children; the case digest folds the per-node digests
     (plus the evidence table) into an order-independent 128-bit sum,
     so two structurally equal cases get one digest no matter the
     insertion order.  A payload edit re-digests only the edited
     node's ancestor cone and adjusts the sum by the changed terms.
     When the combined support/context relation is cyclic the subtree
     digest is not well defined, so the case digest falls back to an
     equally canonical flat sum over payloads and links.

   - {e Verdict memo.}  Each node's well-formedness findings and
     per-node lints depend on a small, explicit input set: its
     payload, its support degree, its SupportedBy parents' universal
     flags, the evidence table's answer for its citation, its
     goal-like children's ids and content words, its reachability bit
     and whether the case has roots ({!Argus_ir.Fused.node_findings}
     documents this).  A digest of exactly those inputs keys a
     bounded, domain-safe memo of the per-node diagnostic lists —
     [store.reused_verdicts] counts reuse, [store.dirty_cone] counts
     the nodes actually re-checked.  FIFO eviction never changes a
     result: a miss just re-derives.

   A verdict reassembles the cached per-link, shape and per-node
   findings in {!Argus_ir.Fused.check}'s emission order, re-runs the
   (fuel-capped) circular-support walk, and applies the same stable
   sort — byte-identical to a full [Fused.check] of the same
   structure, which test/store holds it to after every random edit.

   Every operation runs under one mutex: correctness first, and the
   per-op work after the first put is tiny.  The gauge [store.nodes]
   tracks live nodes across cases. *)

module Id = Argus_core.Id
module Diagnostic = Argus_core.Diagnostic
module Evidence = Argus_core.Evidence
module Node = Argus_gsn.Node
module Structure = Argus_gsn.Structure
module Wellformed = Argus_gsn.Wellformed
module Confidence = Argus_confidence.Confidence
module Caseir = Argus_ir.Caseir
module Fused = Argus_ir.Fused
module Counter = Argus_obs.Counter
module Gauge = Argus_obs.Metrics.Gauge
module ISet = Set.Make (Int)

type edit =
  | Set_text of Id.t * string
  | Add_node of Node.t
  | Remove_node of Id.t
  | Link of Structure.link * Id.t * Id.t
  | Unlink of Structure.link * Id.t * Id.t

type error = Unknown_digest of string | Bad_edit of string

let error_message = function
  | Unknown_digest d -> Printf.sprintf "no case with digest %s" d
  | Bad_edit msg -> msg

type verdict = {
  vdigest : string;
  result : Fused.result;
  confidence : float;
  from_memo : bool;
}

let c_node_hits = Counter.make "store.node_hits"
let c_reused = Counter.make "store.reused_verdicts"
let c_dirty = Counter.make "store.dirty_cone"
let g_nodes = Gauge.make "store.nodes"

let default_trust (_ : Evidence.t) = 0.9

type case_state = {
  mutable structure : Structure.t;
  ruleset : Wellformed.ruleset;
  mutable ir : Caseir.t;
  mutable ctx_in : int list array;
      (** Per entity: InContextOf sources — the reverse edges the
          dirty-cone walk needs and the IR's CSR does not keep. *)
  mutable acyclic : bool;
      (** Combined SupportedBy/InContextOf relation acyclic. *)
  mutable elem : string array;
      (** Per node: its term in the case-digest sum — the Merkle
          subtree digest when acyclic, the local payload digest
          otherwise. *)
  mutable sum : Bytes.t;  (** Rolling 128-bit sum of all terms. *)
  mutable digest : string;
  mutable keys : string array;  (** Per node: verdict-memo key. *)
  mutable wf_node : Diagnostic.t list array;
  mutable inf_node : Diagnostic.t list array;
  mutable wf_idx : ISet.t;  (** Nodes with nonempty wf findings. *)
  mutable inf_idx : ISet.t;
  mutable link_wf : Diagnostic.t list;  (** All per-link findings. *)
  mutable shape_wf : Diagnostic.t list;  (** Cycle + roots findings. *)
  mutable cached : (Fused.result * float) option;
      (** The assembled verdict, valid until the next patch. *)
  mutable conf : float option;
      (** Root confidence; survives text edits (confidence never
          reads node text), dies with any other edit. *)
}

type t = {
  mu : Mutex.t;
  cases : (string, case_state) Hashtbl.t;
  arena : (string, Caseir.derived) Hashtbl.t;
  arena_fifo : string Queue.t;
  arena_capacity : int;
  memo : (string, Diagnostic.t list * Diagnostic.t list) Hashtbl.t;
  memo_fifo : string Queue.t;
  memo_capacity : int;
}

let create ?(memo_capacity = 1 lsl 18) () =
  {
    mu = Mutex.create ();
    cases = Hashtbl.create 16;
    arena = Hashtbl.create 1024;
    arena_fifo = Queue.create ();
    arena_capacity = max 16 memo_capacity;
    memo = Hashtbl.create 1024;
    memo_fifo = Queue.create ();
    memo_capacity = max 16 memo_capacity;
  }

(* --- the node arena: hash-consed payload derivations --- *)

let payload_key (n : Node.t) =
  Digest.string (Node.type_to_string n.Node.node_type ^ "\x00" ^ n.Node.text)

let arena_derive store n =
  let key = payload_key n in
  match Hashtbl.find_opt store.arena key with
  | Some d ->
      Counter.incr c_node_hits;
      d
  | None ->
      let d = Caseir.derive n in
      Hashtbl.add store.arena key d;
      Queue.add key store.arena_fifo;
      if Queue.length store.arena_fifo > store.arena_capacity then
        Hashtbl.remove store.arena (Queue.pop store.arena_fifo);
      d

(* --- digests --- *)

(* 128-bit byte-wise sum with carry: associative, commutative and
   invertible, so terms can be added and removed incrementally and the
   result never depends on insertion order. *)
let sum_zero () = Bytes.make 16 '\000'

let sum_add acc (d : string) =
  let carry = ref 0 in
  for b = 0 to 15 do
    let v = Char.code (Bytes.get acc b) + Char.code d.[b] + !carry in
    Bytes.set acc b (Char.chr (v land 0xff));
    carry := v lsr 8
  done

let sum_sub acc (d : string) =
  let borrow = ref 0 in
  for b = 0 to 15 do
    let v = Char.code (Bytes.get acc b) - Char.code d.[b] - !borrow in
    Bytes.set acc b (Char.chr (v land 0xff));
    borrow := if v < 0 then 1 else 0
  done

(* The local digest covers the full payload — id, type, status, text,
   formal rendering, annotations, evidence citation.  Marshal is
   deterministic on this pure data and spares a hand-rolled codec. *)
let local_digest (n : Node.t) = Digest.string ("n\x00" ^ Marshal.to_string n [])
let evidence_digest ev = Digest.string ("e\x00" ^ Marshal.to_string ev [])

let link_digest kind src dst =
  Digest.string
    (Printf.sprintf "l\x00%s\x00%s\x00%s"
       (match kind with
       | Structure.Supported_by -> "s"
       | Structure.In_context_of -> "c")
       (Id.to_string src) (Id.to_string dst))

let dangling_digest id = Digest.string ("d\x00" ^ Id.to_string id)
let cycle_digest id = Digest.string ("y\x00" ^ Id.to_string id)

(* The Merkle subtree digest of every node: local payload digest plus
   the sorted digests of its SupportedBy and InContextOf children.
   Sorting makes sibling order irrelevant, so structurally equal cases
   digest equal.  A grey child during the DFS marks the combined
   relation cyclic; the caller then discards these in favour of the
   flat scheme (a traversal-order-dependent cycle cut would break
   order independence). *)
let merkle_subs (ir : Caseir.t) =
  let n = ir.Caseir.n_nodes in
  let subs = Array.make (max 1 n) "" in
  let state = Array.make (max 1 ir.Caseir.n_entities) 0 in
  let cyclic = ref false in
  let rec sub i =
    if i >= n then dangling_digest ir.Caseir.ids.(i)
    else if state.(i) = 1 then begin
      cyclic := true;
      cycle_digest ir.Caseir.ids.(i)
    end
    else if state.(i) = 2 then subs.(i)
    else begin
      state.(i) <- 1;
      let kids off dat =
        let acc = ref [] in
        for k = off.(i) to off.(i + 1) - 1 do
          acc := sub dat.(k) :: !acc
        done;
        List.sort String.compare !acc
      in
      let s = kids ir.Caseir.sup_out_off ir.Caseir.sup_out in
      let c = kids ir.Caseir.ctx_out_off ir.Caseir.ctx_out in
      let d =
        Digest.string
          (String.concat ""
             ("m\x00" :: local_digest ir.Caseir.nodes.(i)
             :: "\x01" :: s
             @ ("\x02" :: c)))
      in
      state.(i) <- 2;
      subs.(i) <- d;
      d
    end
  in
  for i = 0 to n - 1 do
    ignore (sub i)
  done;
  (subs, not !cyclic)

let render_digest ~acyclic sum =
  Digest.to_hex
    (Digest.string ((if acyclic then "A" else "C") ^ Bytes.to_string sum))

(* Full digest state of an IR: the per-node terms, cyclicity, the sum
   (including evidence and, when cyclic, link terms) and the final
   case digest. *)
let digest_state (ir : Caseir.t) =
  let subs, acyclic = merkle_subs ir in
  let n = ir.Caseir.n_nodes in
  let elem =
    if acyclic then subs
    else Array.init (max 1 n) (fun i -> local_digest ir.Caseir.nodes.(i))
  in
  let sum = sum_zero () in
  for i = 0 to n - 1 do
    sum_add sum elem.(i)
  done;
  if acyclic then begin
    (* A real source's Merkle digest covers its out-links; a dangling
       source has no digest of its own, so its out-links enter the sum
       directly or they would be invisible. *)
    for k = 0 to Array.length ir.Caseir.link_kind - 1 do
      let si = ir.Caseir.link_src.(k) in
      if si >= n then
        sum_add sum
          (link_digest ir.Caseir.link_kind.(k) ir.Caseir.ids.(si)
             ir.Caseir.ids.(ir.Caseir.link_dst.(k)))
    done
  end
  else
    List.iter
      (fun (kind, src, dst) -> sum_add sum (link_digest kind src dst))
      (Structure.links ir.Caseir.structure);
  List.iter
    (fun ev -> sum_add sum (evidence_digest ev))
    (Structure.evidence ir.Caseir.structure);
  (elem, acyclic, sum, render_digest ~acyclic sum)

let digest_of structure =
  let _, _, _, digest = digest_state (Caseir.intern structure) in
  digest

(* --- verdict-memo keys --- *)

let status_tag = function
  | Node.Developed -> "d"
  | Node.Undeveloped -> "u"
  | Node.Uninstantiated -> "i"
  | Node.Undeveloped_uninstantiated -> "w"

(* Exactly the inputs of [Fused.node_findings] + [node_lint_findings]
   for node [i] — see the intro comment.  Two nodes with equal keys
   produce equal diagnostic lists, which is what lets the memo serve
   across cases and across edits. *)
let node_key (ir : Caseir.t) i =
  let b = Buffer.create 160 in
  let n = ir.Caseir.nodes.(i) in
  Buffer.add_string b "k1\x00";
  Buffer.add_string b (Id.to_string ir.Caseir.ids.(i));
  Buffer.add_char b '\x00';
  Buffer.add_string b (Node.type_to_string n.Node.node_type);
  Buffer.add_char b '\x00';
  Buffer.add_string b (status_tag n.Node.status);
  Buffer.add_char b '\x00';
  Buffer.add_string b n.Node.text;
  Buffer.add_char b '\x00';
  let unsupported =
    ir.Caseir.sup_out_off.(i + 1) = ir.Caseir.sup_out_off.(i)
  in
  Buffer.add_char b (if unsupported then '1' else '0');
  Buffer.add_char b (if ir.Caseir.reachable.(i) then '1' else '0');
  Buffer.add_char b (if ir.Caseir.roots <> [] then '1' else '0');
  (match n.Node.node_type with
  | Node.Solution ->
      (match n.Node.evidence with
      | None -> Buffer.add_string b "ev:-"
      | Some ev_id -> (
          Buffer.add_string b "ev:";
          Buffer.add_string b (Id.to_string ev_id);
          Buffer.add_char b ':';
          match Structure.find_evidence ev_id ir.Caseir.structure with
          | None -> Buffer.add_char b '?'
          | Some ev ->
              Buffer.add_string b (Evidence.kind_to_string ev.Evidence.kind)));
      (* SupportedBy parents in link order: id and whether the parent
         is a universal goal-like claim (the weak-evidence inputs). *)
      for k = ir.Caseir.sup_in_off.(i) to ir.Caseir.sup_in_off.(i + 1) - 1 do
        let pi = ir.Caseir.sup_in.(k) in
        if pi < ir.Caseir.n_nodes then begin
          Buffer.add_string b "\x00p:";
          Buffer.add_string b (Id.to_string ir.Caseir.ids.(pi));
          Buffer.add_char b
            (if ir.Caseir.goal_like.(pi) && ir.Caseir.universal.(pi) then 'u'
             else '-')
        end
      done
  | _ -> ());
  (* Goal-like SupportedBy children in link order: id and content
     words (the equivocation-lint inputs). *)
  for k = ir.Caseir.sup_out_off.(i) to ir.Caseir.sup_out_off.(i + 1) - 1 do
    let j = ir.Caseir.sup_out.(k) in
    if j < ir.Caseir.n_nodes && ir.Caseir.goal_like.(j) then begin
      Buffer.add_string b "\x00g:";
      Buffer.add_string b (Id.to_string ir.Caseir.ids.(j));
      Buffer.add_char b ':';
      Buffer.add_string b ir.Caseir.norm.(j)
    end
  done;
  Digest.string (Buffer.contents b)

(* --- per-node verdicts through the memo --- *)

let node_verdict store st i =
  let key = st.keys.(i) in
  match Hashtbl.find_opt store.memo key with
  | Some v ->
      Counter.incr c_reused;
      v
  | None ->
      Counter.incr c_dirty;
      let v = (Fused.node_findings st.ir i, Fused.node_lint_findings st.ir i) in
      Hashtbl.add store.memo key v;
      Queue.add key store.memo_fifo;
      if Queue.length store.memo_fifo > store.memo_capacity then
        Hashtbl.remove store.memo (Queue.pop store.memo_fifo);
      v

let set_node_verdict st i (wf, inf) =
  st.wf_node.(i) <- wf;
  st.wf_idx <-
    (if wf = [] then ISet.remove i st.wf_idx else ISet.add i st.wf_idx);
  st.inf_node.(i) <- inf;
  st.inf_idx <-
    (if inf = [] then ISet.remove i st.inf_idx else ISet.add i st.inf_idx)

(* --- building and rebuilding case state --- *)

let build_ctx_in (ir : Caseir.t) =
  let ctx_in = Array.make (max 1 ir.Caseir.n_entities) [] in
  Array.iteri
    (fun k kind ->
      if kind = Structure.In_context_of then
        let d = ir.Caseir.link_dst.(k) in
        ctx_in.(d) <- ir.Caseir.link_src.(k) :: ctx_in.(d))
    ir.Caseir.link_kind;
  ctx_in

(* Full (re)build from a structure: intern through the arena, then
   recompute digests, keys, per-node verdicts (mostly memo hits after
   a shape edit) and the link/shape findings. *)
let rebuild store st structure =
  let ir = Caseir.intern ~derive:(arena_derive store) structure in
  let n = ir.Caseir.n_nodes in
  st.structure <- structure;
  st.ir <- ir;
  st.ctx_in <- build_ctx_in ir;
  let elem, acyclic, sum, digest = digest_state ir in
  st.elem <- elem;
  st.acyclic <- acyclic;
  st.sum <- sum;
  st.digest <- digest;
  st.keys <- Array.make (max 1 n) "";
  st.wf_node <- Array.make (max 1 n) [];
  st.inf_node <- Array.make (max 1 n) [];
  st.wf_idx <- ISet.empty;
  st.inf_idx <- ISet.empty;
  for i = 0 to n - 1 do
    st.keys.(i) <- node_key ir i;
    set_node_verdict st i (node_verdict store st i)
  done;
  st.link_wf <- Fused.link_findings ~ruleset:st.ruleset ir;
  st.shape_wf <- Fused.shape_findings ir;
  st.cached <- None

let fresh_state ruleset =
  {
    structure = Structure.empty;
    ruleset;
    ir = Caseir.intern Structure.empty;
    ctx_in = [||];
    acyclic = true;
    elem = [||];
    sum = sum_zero ();
    digest = "";
    keys = [||];
    wf_node = [||];
    inf_node = [||];
    wf_idx = ISet.empty;
    inf_idx = ISet.empty;
    link_wf = [];
    shape_wf = [];
    cached = None;
    conf = None;
  }

let update_gauge store =
  Gauge.set g_nodes
    (Hashtbl.fold (fun _ st acc -> acc + st.ir.Caseir.n_nodes) store.cases 0)

let locked store f =
  Mutex.lock store.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock store.mu) f

(* --- operations --- *)

let put ?(ruleset = Wellformed.Standard) store structure =
  locked store (fun () ->
      let st = fresh_state ruleset in
      rebuild store st structure;
      st.conf <- None;
      Hashtbl.replace store.cases st.digest st;
      update_gauge store;
      st.digest)

let mem store digest =
  locked store (fun () -> Hashtbl.mem store.cases digest)

let case store digest =
  locked store (fun () ->
      Option.map
        (fun st -> st.structure)
        (Hashtbl.find_opt store.cases digest))

let find store digest =
  locked store (fun () ->
      Option.map
        (fun st -> (st.ruleset, st.structure))
        (Hashtbl.find_opt store.cases digest))

let size store = locked store (fun () -> Hashtbl.length store.cases)

let remove store digest =
  locked store (fun () ->
      Hashtbl.remove store.cases digest;
      update_gauge store)

let cases store =
  locked store (fun () ->
      Hashtbl.fold
        (fun digest st acc -> (digest, st.ruleset, st.structure) :: acc)
        store.cases []
      |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b))

(* The ancestor cone of the edited nodes: everything whose Merkle
   digest covers them, over reverse SupportedBy and reverse
   InContextOf edges.  Only meaningful in acyclic mode (cyclic-mode
   terms are local, so the cone is the edited set itself). *)
let ancestor_cone st seeds =
  let ir = st.ir in
  let n = ir.Caseir.n_nodes in
  let visited = Array.make (max 1 n) false in
  let rec up i =
    if i < n && not visited.(i) then begin
      visited.(i) <- true;
      for k = ir.Caseir.sup_in_off.(i) to ir.Caseir.sup_in_off.(i + 1) - 1 do
        up ir.Caseir.sup_in.(k)
      done;
      List.iter up st.ctx_in.(i)
    end
  in
  List.iter up seeds;
  let cone = ref ISet.empty in
  for i = 0 to n - 1 do
    if visited.(i) then cone := ISet.add i !cone
  done;
  !cone

(* Re-digest after payload-only edits: recompute the Merkle digests of
   the ancestor cone (cached digests outside it are final, and the
   acyclic guarantee makes the recursion terminate), swapping each
   changed term out of the sum and the new one in. *)
let redigest_cone st cone =
  let ir = st.ir in
  let n = ir.Caseir.n_nodes in
  if not st.acyclic then begin
    (* Cyclic mode: terms are local payload digests, so each edited
       node swaps exactly its own term. *)
    ISet.iter
      (fun i ->
        let d = local_digest ir.Caseir.nodes.(i) in
        sum_sub st.sum st.elem.(i);
        sum_add st.sum d;
        st.elem.(i) <- d)
      cone;
    st.digest <- render_digest ~acyclic:false st.sum
  end
  else begin
  let computed = Array.make (max 1 n) false in
  let rec sub i =
    if i >= n then dangling_digest ir.Caseir.ids.(i)
    else if computed.(i) || not (ISet.mem i cone) then st.elem.(i)
    else begin
      let kids off dat =
        let acc = ref [] in
        for k = off.(i) to off.(i + 1) - 1 do
          acc := sub dat.(k) :: !acc
        done;
        List.sort String.compare !acc
      in
      let s = kids ir.Caseir.sup_out_off ir.Caseir.sup_out in
      let c = kids ir.Caseir.ctx_out_off ir.Caseir.ctx_out in
      let d =
        Digest.string
          (String.concat ""
             ("m\x00" :: local_digest ir.Caseir.nodes.(i)
             :: "\x01" :: s
             @ ("\x02" :: c)))
      in
      computed.(i) <- true;
      sum_sub st.sum st.elem.(i);
      sum_add st.sum d;
      st.elem.(i) <- d;
      d
    end
  in
  ISet.iter (fun i -> ignore (sub i)) cone;
  st.digest <- render_digest ~acyclic:true st.sum
  end

(* The nodes whose memo keys a payload edit of [i] can change: [i]
   itself, its SupportedBy parents (their equivocation lints read
   [i]'s content words), and its SupportedBy children (a solution
   child's weak-evidence rule reads [i]'s universal flag). *)
let key_cone st i =
  let ir = st.ir in
  let n = ir.Caseir.n_nodes in
  let acc = ref (ISet.singleton i) in
  for k = ir.Caseir.sup_in_off.(i) to ir.Caseir.sup_in_off.(i + 1) - 1 do
    let pi = ir.Caseir.sup_in.(k) in
    if pi < n then acc := ISet.add pi !acc
  done;
  for k = ir.Caseir.sup_out_off.(i) to ir.Caseir.sup_out_off.(i + 1) - 1 do
    let j = ir.Caseir.sup_out.(k) in
    if j < n then acc := ISet.add j !acc
  done;
  !acc

(* Validate and apply the edit batch to the (persistent) structure,
   classifying it: [`Payload edits] when every edit replaces a node's
   text in place — the incremental fast path — and [`Shape] when any
   edit touches the graph.  Nothing is mutated here, so a bad edit
   leaves the store untouched. *)
let apply_edits structure edits =
  let rec go structure payload = function
    | [] -> Ok (structure, Option.map List.rev payload)
    | Set_text (id, text) :: rest -> (
        match Structure.find id structure with
        | None ->
            Error
              (Bad_edit
                 (Printf.sprintf "set-text: no node %s" (Id.to_string id)))
        | Some n ->
            let n' =
              Node.make ~id ~node_type:n.Node.node_type ~status:n.Node.status
                ?formal:n.Node.formal ~annotations:n.Node.annotations
                ?evidence:n.Node.evidence text
            in
            go
              (Structure.add_node n' structure)
              (Option.map (fun ps -> (id, n') :: ps) payload)
              rest)
    | Add_node n :: rest -> go (Structure.add_node n structure) None rest
    | Remove_node id :: rest ->
        if not (Structure.mem id structure) then
          Error
            (Bad_edit
               (Printf.sprintf "remove-node: no node %s" (Id.to_string id)))
        else go (Structure.remove_node id structure) None rest
    | Link (kind, src, dst) :: rest ->
        go (Structure.connect kind ~src ~dst structure) None rest
    | Unlink (kind, src, dst) :: rest ->
        go (Structure.disconnect kind ~src ~dst structure) None rest
  in
  go structure (Some []) edits

let patch store ~digest edits =
  locked store (fun () ->
      match Hashtbl.find_opt store.cases digest with
      | None -> Error (Unknown_digest digest)
      | Some st -> (
          match apply_edits st.structure edits with
          | Error _ as e -> e
          | Ok (structure, Some payload_edits) ->
              (* Payload-only fast path: patch the IR arrays in place,
                 re-key and re-verdict the edit's neighbourhood,
                 re-digest its ancestor cone. *)
              let seeds = ref [] in
              List.iter
                (fun (id, n') ->
                  match Caseir.entity_index st.ir id with
                  | None -> ()
                  | Some i ->
                      st.ir <-
                        Caseir.set_node ~derive:(arena_derive store) st.ir
                          structure i n';
                      seeds := i :: !seeds)
                payload_edits;
              st.structure <- structure;
              let seeds = !seeds in
              let keys =
                List.fold_left
                  (fun acc i -> ISet.union acc (key_cone st i))
                  ISet.empty seeds
              in
              ISet.iter
                (fun i ->
                  st.keys.(i) <- node_key st.ir i;
                  set_node_verdict st i (node_verdict store st i))
                keys;
              let cone =
                if st.acyclic then ancestor_cone st seeds
                else ISet.of_list seeds
              in
              redigest_cone st cone;
              st.cached <- None;
              Hashtbl.remove store.cases digest;
              Hashtbl.replace store.cases st.digest st;
              Ok st.digest
          | Ok (structure, None) ->
              (* A shape edit: rebuild through the arena and the
                 verdict memo — O(n) hashing, but only the nodes whose
                 inputs actually changed are re-checked. *)
              rebuild store st structure;
              st.conf <- None;
              Hashtbl.remove store.cases digest;
              Hashtbl.replace store.cases st.digest st;
              update_gauge store;
              Ok st.digest))

let verdict store ~digest =
  locked store (fun () ->
      match Hashtbl.find_opt store.cases digest with
      | None -> Error (Unknown_digest digest)
      | Some st -> (
          match st.cached with
          | Some (result, confidence) ->
              Counter.incr c_reused;
              Ok { vdigest = digest; result; confidence; from_memo = true }
          | None ->
              let node_wf =
                List.concat_map
                  (fun i -> st.wf_node.(i))
                  (ISet.elements st.wf_idx)
              in
              let node_inf =
                List.concat_map
                  (fun i -> st.inf_node.(i))
                  (ISet.elements st.inf_idx)
              in
              let wf = st.link_wf @ st.shape_wf @ node_wf in
              let informal = node_inf @ Fused.walk_findings st.ir in
              let result = Fused.assemble ~wf ~informal in
              let confidence =
                match st.conf with
                | Some c -> c
                | None ->
                    let c =
                      Confidence.root_confidence ~trust:default_trust
                        st.structure
                    in
                    st.conf <- Some c;
                    c
              in
              st.cached <- Some (result, confidence);
              Ok { vdigest = digest; result; confidence; from_memo = false }))
