(** Append-only write-ahead log of store operations.

    File layout: a magic line ["ARGUSWAL1\n"] followed by records of
    the form [len:u32le ^ crc32:u32le ^ payload], where the payload is
    the [Marshal] encoding of {!record}.  {!parse} classifies damage:
    an interrupted append (incomplete record, or a bad checksum in the
    {e final} record) is a torn tail and reports how many bytes to
    truncate; a bad checksum with data after it is mid-stream
    corruption and is refused with a diagnostic naming the offset.

    Fault probes: [store.wal.append] and [store.wal.fsync], keyed by
    the record's sequence number; [store.recover.read] (key ["wal"])
    on {!read_file}. *)

type sync =
  | Always  (** fsync after every append: an ack means durable. *)
  | Interval of float  (** fsync at most once per window (ms). *)
  | Never  (** leave persistence timing to the kernel. *)

type op =
  | Put of Argus_gsn.Wellformed.ruleset * Argus_gsn.Structure.t
  | Patch of string * Store.edit list
      (** [Patch (base_digest, edits)]. *)

type record = {
  seq : int;  (** Monotone per-log sequence number, starting at 1. *)
  op : op;
  digest : string;
      (** The case digest the store answered when the operation
          committed; recovery recomputes and verifies it. *)
}

val magic : string

val crc32 : string -> int
(** CRC-32 (IEEE) of a string, in [0, 0xFFFFFFFF]. *)

val u32le : int -> string
val read_u32le : string -> int -> int

val write_fully : Unix.file_descr -> string -> unit
(** Write every byte or raise; retries [EINTR], maps a zero-progress
    write to [ENOSPC].  Shared with {!Snapshot}. *)

val encode : record -> string
(** The framed on-disk bytes of one record. *)

type tail =
  | Clean
  | Torn of { offset : int; dropped : int }
      (** Valid up to [offset]; [dropped] trailing bytes are a torn
          final record to truncate away. *)

val parse : string -> (record list * tail, string) result
(** Decode a whole log image: the checksum-valid record prefix plus
    the tail state, or [Error diagnostic] for mid-stream corruption
    (bad magic, checksum failure before the end, undecodable
    payload). *)

(** {1 Appending} *)

type t

val openw : ?sync:sync -> string -> t
(** Open (creating if absent) a log for appending; writes the magic
    header into an empty file.  Raises [Unix.Unix_error] on I/O
    failure. *)

val append : t -> record -> unit
(** Append one record and apply the sync policy.  Raises
    [Fault.Injected] or [Unix.Unix_error] on failure — the caller is
    expected to degrade to read-only. *)

val flush : t -> unit
(** fsync regardless of policy (graceful drain). *)

val reset : t -> unit
(** Truncate to an empty log (magic only) after a snapshot has
    captured everything; fsyncs. *)

val close : t -> unit

val read_file : string -> (string, string) result
(** The raw log image for recovery, through the [store.recover.read]
    probe. *)
