(* Crash recovery: rebuild a store from snapshot + WAL tail.

   The state machine, in order:

     1. no data dir            -> create it, fresh empty store
     2. newest snapshot, if any -> load, [Store.put] every case,
                                   verify each recomputed digest
                                   against the recorded one
     3. WAL, if any            -> parse; truncate a torn tail on
                                   disk; replay every record with
                                   seq > snapshot seq, verifying the
                                   resulting digest after each op
     4. anything inconsistent  -> Error with a diagnostic precise
                                   enough to name the file, the seq
                                   and the digests involved

   Digest verification is the load-bearing step: the digest in each
   record is what the store answered when the operation originally
   committed, so equality after replay proves the recovered case is
   byte-identical (the digest is a Merkle sum over payloads and
   topology) and therefore that verdicts stay byte-identical to
   [Fused.check] — PR 8's invariant, carried across the crash.

   Records with seq <= snapshot seq can legitimately appear (a crash
   between snapshot rename and WAL reset); they are skipped.  A seq
   that jumps or repeats past that point means the log was tampered
   with mid-stream and is refused. *)

module Fault = Argus_rt.Fault

type outcome = {
  store : Store.t;
  next_seq : int;  (** First unused sequence number. *)
  snapshot_seq : int;  (** 0 when no snapshot was loaded. *)
  replayed : int;  (** WAL records applied on top of the snapshot. *)
  truncated : int;  (** Torn-tail bytes dropped from the WAL. *)
}

let wal_path dir = Filename.concat dir "wal.log"

let summary o =
  Printf.sprintf
    "recovered %d case%s (snapshot seq %d, %d WAL record%s replayed%s)"
    (Store.size o.store)
    (if Store.size o.store = 1 then "" else "s")
    o.snapshot_seq o.replayed
    (if o.replayed = 1 then "" else "s")
    (if o.truncated > 0 then
       Printf.sprintf ", %d torn byte%s truncated" o.truncated
         (if o.truncated = 1 then "" else "s")
     else "")

(* Truncate the WAL file on disk at [keep] bytes, so the torn tail
   cannot confuse a later recovery that starts from the same file. *)
let truncate_file path keep =
  match Unix.openfile path [ Unix.O_WRONLY ] 0o644 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> Unix.ftruncate fd keep)
  | exception Unix.Unix_error _ -> ()

let apply_record store (r : Wal.record) : (unit, string) result =
  match r.op with
  | Wal.Put (ruleset, structure) ->
      let digest = Store.put ~ruleset store structure in
      if String.equal digest r.digest then Ok ()
      else
        Error
          (Printf.sprintf
             "WAL record seq %d: recovered put digests to %s but the log \
              recorded %s — the log does not describe this store"
             r.seq digest r.digest)
  | Wal.Patch (base, edits) -> (
      match Store.patch store ~digest:base edits with
      | Ok digest when String.equal digest r.digest -> Ok ()
      | Ok digest ->
          Error
            (Printf.sprintf
               "WAL record seq %d: recovered patch digests to %s but the log \
                recorded %s — the log does not describe this store"
               r.seq digest r.digest)
      | Error e ->
          Error
            (Printf.sprintf "WAL record seq %d: replay failed: %s" r.seq
               (Store.error_message e)))

let load ?memo_capacity ~dir () : (outcome, string) result =
  match
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
    else if not (Sys.is_directory dir) then
      invalid_arg (Printf.sprintf "%s exists and is not a directory" dir)
  with
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot create data dir %s: %s" dir
           (Unix.error_message e))
  | exception Invalid_argument msg -> Error msg
  | () -> (
      Snapshot.sweep_tmp dir;
      let store = Store.create ?memo_capacity () in
      let snapshot_result =
        match Snapshot.latest dir with
        | None -> Ok 0
        | Some (_, path) -> (
            match Snapshot.read path with
            | Error msg -> Error msg
            | Ok image -> (
                let rec load_cases = function
                  | [] -> Ok image.Snapshot.seq
                  | (digest, ruleset, structure) :: rest ->
                      let got = Store.put ~ruleset store structure in
                      if String.equal got digest then load_cases rest
                      else
                        Error
                          (Printf.sprintf
                             "%s: case recorded under digest %s recomputes \
                              to %s — snapshot does not describe its own \
                              contents"
                             path digest got)
                in
                match load_cases image.Snapshot.cases with
                | Error _ as e -> e
                | Ok seq -> Ok seq))
      in
      match snapshot_result with
      | Error msg -> Error msg
      | Ok snapshot_seq -> (
          let path = wal_path dir in
          if not (Sys.file_exists path) then
            Ok
              {
                store;
                next_seq = snapshot_seq + 1;
                snapshot_seq;
                replayed = 0;
                truncated = 0;
              }
          else
            match Wal.read_file path with
            | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
            | Ok data -> (
                match Wal.parse data with
                | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
                | Ok (records, tail) -> (
                    let truncated =
                      match tail with
                      | Wal.Clean -> 0
                      | Wal.Torn { offset; dropped } ->
                          truncate_file path offset;
                          dropped
                    in
                    let rec replay last_seq replayed = function
                      | [] -> Ok (last_seq, replayed)
                      | (r : Wal.record) :: rest -> (
                          match
                            Fault.point ~key:(string_of_int r.seq)
                              "store.recover.read"
                          with
                          | exception Fault.Injected probe ->
                              Error
                                (Printf.sprintf
                                   "injected fault at probe %s replaying \
                                    seq %d"
                                   probe r.seq)
                          | () ->
                              if r.seq <= snapshot_seq then
                                (* Logged before the snapshot that
                                   already contains its effect. *)
                                replay last_seq replayed rest
                              else if r.seq <> last_seq + 1 then
                                Error
                                  (Printf.sprintf
                                     "%s: sequence jumps from %d to %d — \
                                      records are missing mid-stream; \
                                      refusing to replay"
                                     path last_seq r.seq)
                              else
                                match apply_record store r with
                                | Error _ as e -> e
                                | Ok () -> replay r.seq (replayed + 1) rest)
                    in
                    match replay snapshot_seq 0 records with
                    | Error msg -> Error msg
                    | Ok (last_seq, replayed) ->
                        Ok
                          {
                            store;
                            next_seq = last_seq + 1;
                            snapshot_seq;
                            replayed;
                            truncated;
                          }))))
