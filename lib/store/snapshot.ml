(* Compacting snapshots of the live case set.

   A snapshot is the WAL's rendezvous point: once `snapshot-<seq>.snap`
   holds every case as of sequence number <seq>, the log can be reset
   and recovery starts from the snapshot instead of replaying history.
   The file reuses the WAL's framing — magic, then ONE crc-framed
   record whose payload is Marshal of {seq; cases} — so the same
   checksum discipline covers both files.

   Atomicity: write to `<name>.tmp`, fsync the file, rename over the
   final name, fsync the directory.  A crash at any point leaves
   either the old state (tmp never renamed; stale tmps are swept by
   [sweep_tmp] at startup) or the new one — never a half-visible
   snapshot.  Older `snapshot-*.snap` files are deleted only after
   the rename lands.

   Corruption policy: the NEWEST snapshot must parse, because the WAL
   was reset when it was written — an older snapshot plus the current
   WAL segment would silently lose every operation between the two,
   so a damaged newest snapshot is refused, not worked around.

   Fault probe: [store.snapshot.write] (keyed by seq) before any
   bytes are written.  Counter: [store.snapshots]. *)

module Structure = Argus_gsn.Structure
module Wellformed = Argus_gsn.Wellformed
module Fault = Argus_rt.Fault
module Counter = Argus_obs.Counter

let c_snapshots = Counter.make "store.snapshots"

let magic = "ARGUSSNAP1\n"

type image = {
  seq : int;  (** Last WAL sequence number the snapshot covers. *)
  cases : (string * Wellformed.ruleset * Structure.t) list;
      (** [(digest, ruleset, structure)], sorted by digest. *)
}

let filename ~seq = Printf.sprintf "snapshot-%012d.snap" seq

let is_snapshot name =
  String.starts_with ~prefix:"snapshot-" name
  && Filename.check_suffix name ".snap"
  && String.length name > String.length "snapshot-" + String.length ".snap"

(* The seq encoded in a snapshot filename, or None for strangers. *)
let seq_of_filename name =
  if not (is_snapshot name) then None
  else
    int_of_string_opt
      (String.sub name 9 (String.length name - 9 - String.length ".snap"))

let latest dir =
  match Sys.readdir dir with
  | entries ->
      Array.fold_left
        (fun best name ->
          match seq_of_filename name with
          | None -> best
          | Some seq -> (
              match best with
              | Some (bseq, _) when bseq >= seq -> best
              | _ -> Some (seq, Filename.concat dir name)))
        None entries
  | exception Sys_error _ -> None

let sweep_tmp dir =
  match Sys.readdir dir with
  | entries ->
      Array.iter
        (fun name ->
          if Filename.check_suffix name ".tmp" then
            try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        entries
  | exception Sys_error _ -> ()

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write ~dir (image : image) =
  Fault.point ~key:(string_of_int image.seq) "store.snapshot.write";
  let payload = Marshal.to_string image [] in
  let body =
    magic ^ Wal.u32le (String.length payload) ^ Wal.u32le (Wal.crc32 payload)
    ^ payload
  in
  let final = Filename.concat dir (filename ~seq:image.seq) in
  let tmp = final ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Wal.write_fully fd body;
      Unix.fsync fd);
  Unix.rename tmp final;
  fsync_dir dir;
  Counter.incr c_snapshots;
  (* Old generations are garbage once the new one is visible. *)
  (match Sys.readdir dir with
  | entries ->
      Array.iter
        (fun name ->
          match seq_of_filename name with
          | Some seq when seq < image.seq -> (
              try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
          | _ -> ())
        entries
  | exception Sys_error _ -> ());
  final

let read path : (image, string) result =
  match
    Fault.point ~key:"snapshot" "store.recover.read";
    In_channel.with_open_bin path In_channel.input_all
  with
  | exception Fault.Injected probe ->
      Error (Printf.sprintf "injected fault at probe %s reading %s" probe path)
  | exception Sys_error msg -> Error msg
  | data ->
      let n = String.length data in
      let mlen = String.length magic in
      if n < mlen || String.sub data 0 mlen <> magic then
        Error (Printf.sprintf "%s: not an argus snapshot (bad magic)" path)
      else if n - mlen < 8 then
        Error (Printf.sprintf "%s: snapshot truncated (no record header)" path)
      else
        let len = Wal.read_u32le data mlen in
        let crc = Wal.read_u32le data (mlen + 4) in
        if len <> n - mlen - 8 then
          Error
            (Printf.sprintf
               "%s: snapshot truncated (record claims %d bytes, %d present)"
               path len (n - mlen - 8))
        else
          let payload = String.sub data (mlen + 8) len in
          if Wal.crc32 payload <> crc then
            Error (Printf.sprintf "%s: snapshot checksum mismatch" path)
          else
            match (Marshal.from_string payload 0 : image) with
            | image -> Ok image
            | exception _ ->
                Error
                  (Printf.sprintf
                     "%s: snapshot undecodable (checksum valid)" path)
