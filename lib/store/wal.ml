(* The write-ahead log: an append-only file of length-prefixed,
   CRC-checksummed operation records.

   Every committed [put] and [patch] appends one record; recovery
   replays them in order.  The framing is deliberately dumb — no
   page alignment, no record batching — because the store's mutation
   rate is human-scale (editors saving cases), not a transaction
   engine's, and dumb framing keeps the torn-write analysis exact:

     file   := magic record*
     magic  := "ARGUSWAL1\n"
     record := len:u32le crc:u32le payload[len]

   [crc] is CRC-32 (IEEE) of the payload bytes; the payload is the
   [Marshal] encoding of {!record} — pure data (the structure, the
   edits, the result digest), no closures, so the encoding is
   deterministic for a given compiler.  The digest recorded with each
   operation is the case digest the store answered when the operation
   committed; recovery recomputes it and refuses a log whose replay
   disagrees.

   Torn-write discipline (the contract {!parse} implements, which the
   fuzz suite in test/store holds it to):

   - a record that does not fit in the remaining bytes (a crash mid-
     append, ENOSPC mid-write) is a {e torn tail}: everything from its
     offset on is garbage-in-good-faith and gets truncated;
   - a complete final record whose CRC fails is also treated as a torn
     tail — an interrupted append can leave a full-length record of
     partly stale bytes;
   - a CRC failure (or an impossible length) with {e more data after
     it} is mid-stream corruption: something other than a crash-while-
     appending wrote here, replaying past it could resurrect arbitrary
     state, so recovery refuses with the offset in the diagnostic.

   Sync policy: [Always] fsyncs after every append (an acknowledged
   operation is durable), [Interval ms] fsyncs at most once per
   window plus on {!flush} (drain), [Never] leaves it to the kernel.

   Fault probes: [store.wal.append] (keyed by record seq) fires before
   the write, [store.wal.fsync] (keyed likewise) before the fsync —
   so ENOSPC/EIO at either edge is a deterministic test scenario.
   Counters: [store.wal_appends], [store.wal_fsyncs]. *)

module Structure = Argus_gsn.Structure
module Wellformed = Argus_gsn.Wellformed
module Fault = Argus_rt.Fault
module Counter = Argus_obs.Counter

let c_appends = Counter.make "store.wal_appends"
let c_fsyncs = Counter.make "store.wal_fsyncs"

let magic = "ARGUSWAL1\n"

type sync = Always | Interval of float | Never

type op =
  | Put of Wellformed.ruleset * Structure.t
  | Patch of string * Store.edit list

type record = { seq : int; op : op; digest : string }

(* --- CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) --- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* --- framing --- *)

let u32le v =
  String.init 4 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))

let read_u32le s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let encode (r : record) =
  let payload = Marshal.to_string r [] in
  u32le (String.length payload) ^ u32le (crc32 payload) ^ payload

type tail =
  | Clean
  | Torn of { offset : int; dropped : int }
      (** The file is valid up to [offset]; [dropped] trailing bytes
          are a torn final record and should be truncated away. *)

(* Decode a whole log image.  Returns the valid prefix of records plus
   the tail state, or [Error] with a precise diagnostic for anything
   that is not explainable as an interrupted append. *)
let parse (data : string) : (record list * tail, string) result =
  let n = String.length data in
  let mlen = String.length magic in
  if n < mlen then
    if String.equal data (String.sub magic 0 n) then
      (* A crash while writing the very first header: an empty log. *)
      Ok ([], if n = 0 then Clean else Torn { offset = 0; dropped = n })
    else Error "not an argus WAL (bad magic)"
  else if not (String.equal (String.sub data 0 mlen) magic) then
    Error "not an argus WAL (bad magic)"
  else begin
    let records = ref [] in
    let result = ref None in
    let off = ref mlen in
    while !result = None do
      let o = !off in
      if o = n then result := Some (Ok (List.rev !records, Clean))
      else if n - o < 8 then
        (* Header torn mid-write: necessarily the tail. *)
        result := Some (Ok (List.rev !records, Torn { offset = o; dropped = n - o }))
      else begin
        let len = read_u32le data o in
        let crc = read_u32le data (o + 4) in
        if len > n - o - 8 then
          (* The record claims more bytes than the file holds.  Either a
             genuinely torn append, or a corrupted length field — both
             leave nothing parseable after this offset, so truncation is
             the only sound reading. *)
          result := Some (Ok (List.rev !records, Torn { offset = o; dropped = n - o }))
        else begin
          let payload = String.sub data (o + 8) len in
          if crc32 payload <> crc then
            if o + 8 + len = n then
              (* Complete final record, bad bytes: torn append. *)
              result :=
                Some (Ok (List.rev !records, Torn { offset = o; dropped = n - o }))
            else
              result :=
                Some
                  (Error
                     (Printf.sprintf
                        "WAL corrupted mid-stream: checksum mismatch in the \
                         record at byte %d (%d of %d bytes remain after it); \
                         refusing to replay past it"
                        o
                        (n - (o + 8 + len))
                        n))
          else
            match (Marshal.from_string payload 0 : record) with
            | r ->
                records := r :: !records;
                off := o + 8 + len
            | exception _ ->
                result :=
                  Some
                    (Error
                       (Printf.sprintf
                          "WAL corrupted mid-stream: undecodable record at \
                           byte %d (checksum valid); refusing to replay"
                          o))
        end
      end
    done;
    match !result with Some r -> r | None -> assert false
  end

(* --- the append handle --- *)

type t = {
  path : string;
  fd : Unix.file_descr;
  sync : sync;
  mutable last_fsync_ms : float;
  mutable closed : bool;
}

let now_ms () = Unix.gettimeofday () *. 1000.

(* A partial [write] (ENOSPC, or a signal) retried here would leave the
   already-written fragment as a permanent mid-record gap, so any short
   write raises and the caller degrades; a crash mid-write instead
   leaves a torn tail, which recovery truncates. *)
let write_fully fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | 0 -> raise (Unix.Unix_error (Unix.ENOSPC, "write", ""))
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let openw ?(sync = Always) path =
  let fresh = not (Sys.file_exists path) in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let size = (Unix.fstat fd).Unix.st_size in
  if fresh || size = 0 then write_fully fd magic;
  { path; fd; sync; last_fsync_ms = now_ms (); closed = false }

let do_fsync t ~key =
  Fault.point ~key "store.wal.fsync";
  Unix.fsync t.fd;
  Counter.incr c_fsyncs;
  t.last_fsync_ms <- now_ms ()

let append t (r : record) =
  Fault.point ~key:(string_of_int r.seq) "store.wal.append";
  write_fully t.fd (encode r);
  Counter.incr c_appends;
  match t.sync with
  | Always -> do_fsync t ~key:(string_of_int r.seq)
  | Never -> ()
  | Interval ms ->
      if now_ms () -. t.last_fsync_ms >= ms then
        do_fsync t ~key:(string_of_int r.seq)

let flush t = if not t.closed then do_fsync t ~key:"flush"

(* Empty the log after a snapshot has captured everything it held.
   O_APPEND writes always land at the (new) end, so truncate-then-
   rewrite-magic is safe; a crash between the two leaves a zero-length
   file, which [parse] reads as an empty log. *)
let reset t =
  Unix.ftruncate t.fd 0;
  write_fully t.fd magic;
  do_fsync t ~key:"reset"

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* Read a log image for recovery.  The probe [store.recover.read]
   (keyed ["wal"]) guards the read so EIO while recovering is a
   deterministic scenario; parse failures surface as [Error]. *)
let read_file path : (string, string) result =
  match
    Fault.point ~key:"wal" "store.recover.read";
    In_channel.with_open_bin path In_channel.input_all
  with
  | data -> Ok data
  | exception Fault.Injected probe ->
      Error (Printf.sprintf "injected fault at probe %s reading %s" probe path)
  | exception Sys_error msg -> Error msg
