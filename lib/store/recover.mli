(** Crash recovery: rebuild a {!Store.t} from snapshot + WAL tail.

    {!load} creates the data dir if absent, sweeps stale snapshot
    tmp files, loads the newest snapshot (refusing a damaged one —
    see {!Snapshot}), then replays WAL records with
    [seq > snapshot seq] in order.  A torn WAL tail is truncated on
    disk; mid-stream corruption, sequence gaps, or any recovered
    case whose recomputed Merkle digest differs from the digest the
    log recorded are refused with a precise diagnostic.  Digest
    equality after replay is what carries PR 8's invariant across a
    crash: verdicts on recovered cases stay byte-identical to
    [Fused.check].

    Fault probe: [store.recover.read], keyed ["wal"]/["snapshot"] for
    file reads and by seq for each replayed record. *)

type outcome = {
  store : Store.t;
  next_seq : int;  (** First unused sequence number. *)
  snapshot_seq : int;  (** 0 when no snapshot was loaded. *)
  replayed : int;  (** WAL records applied on top of the snapshot. *)
  truncated : int;  (** Torn-tail bytes dropped from the WAL. *)
}

val wal_path : string -> string
(** [dir/wal.log]. *)

val summary : outcome -> string
(** One human line for serve's startup log. *)

val load : ?memo_capacity:int -> dir:string -> unit -> (outcome, string) result
