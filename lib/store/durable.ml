(* The durable store: Store.t + WAL + snapshots + degraded mode.

   This is the layer the service talks to.  Reads pass straight
   through.  Writes go through one mutex that serialises the store
   mutation with its WAL append, so log order always equals commit
   order — without it two domains could commit A then B but log B
   then A, and recovery would replay a history that never happened.

   Failure semantics: any I/O failure on the write path (real, or a
   Fault.Injected from the store.wal.* / store.snapshot.write probes)
   trips the handle into read-only mode.  The store stays consistent
   — the in-memory mutation may have committed, but nothing promised
   durability for it — reads keep answering, writes answer
   [Read_only cause], and health/stats expose the mode and the cause.
   Degradation is sticky: a disk that failed once is not a disk to
   trust again without an operator restart.

   Snapshots: every [snapshot_every] logged operations (0 = never)
   the live case set is written to a snapshot and the WAL reset.
   A snapshot failure degrades like any other write failure; the WAL
   still holds every record, so nothing is lost.

   [flush] (graceful drain) fsyncs the WAL regardless of sync policy
   and never raises — a failing flush degrades, and the daemon goes
   on to exit anyway. *)

module Fault = Argus_rt.Fault
module Json = Argus_core.Json

type mode = Active | Read_only of string

type t = {
  store : Store.t;
  dir : string option;
  mutable wal : Wal.t option;
  sync : Wal.sync;
  snapshot_every : int;
  mu : Mutex.t;
  mutable seq : int;  (** Last sequence number appended. *)
  mutable snap_seq : int;  (** Seq covered by the newest snapshot. *)
  mutable since_snapshot : int;
  mutable mode : mode;
}

type error = Store_error of Store.error | Read_only of string

let error_message = function
  | Store_error e -> Store.error_message e
  | Read_only cause -> Printf.sprintf "store is read-only: %s" cause

let store t = t.store
let mode t = t.mode
let durable t = t.dir <> None
let seq t = t.seq

let create ?dir ?(sync = Wal.Always) ?(snapshot_every = 1024) ?memo_capacity ()
    : (t * string, string) result =
  match dir with
  | None ->
      Ok
        ( {
            store = Store.create ?memo_capacity ();
            dir = None;
            wal = None;
            sync;
            snapshot_every;
            mu = Mutex.create ();
            seq = 0;
            snap_seq = 0;
            since_snapshot = 0;
            mode = Active;
          },
          "in-memory store (no data dir)" )
  | Some dir -> (
      match Recover.load ?memo_capacity ~dir () with
      | Error _ as e -> e
      | Ok outcome -> (
          match Wal.openw ~sync (Recover.wal_path dir) with
          | exception e ->
              Error
                (Printf.sprintf "cannot open WAL in %s: %s" dir
                   (Printexc.to_string e))
          | wal ->
              Ok
                ( {
                    store = outcome.Recover.store;
                    dir = Some dir;
                    wal = Some wal;
                    sync;
                    snapshot_every;
                    mu = Mutex.create ();
                    seq = outcome.Recover.next_seq - 1;
                    snap_seq = outcome.Recover.snapshot_seq;
                    since_snapshot =
                      outcome.Recover.next_seq - 1
                      - outcome.Recover.snapshot_seq;
                    mode = Active;
                  },
                  Recover.summary outcome ) ))

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Trip into read-only.  Called with the mutex held. *)
let degrade t cause =
  (match t.mode with Active -> t.mode <- Read_only cause | Read_only _ -> ());
  match t.wal with
  | Some w ->
      Wal.close w;
      t.wal <- None
  | None -> ()

let cause_of_exn = function
  | Fault.Injected probe -> Printf.sprintf "injected fault at probe %s" probe
  | Unix.Unix_error (e, fn, _) ->
      Printf.sprintf "%s: %s" fn (Unix.error_message e)
  | e -> Printexc.to_string e

(* Snapshot the live case set and reset the WAL.  Failures degrade
   but do not undo the already-logged operation. *)
let maybe_snapshot t =
  if t.snapshot_every > 0 && t.since_snapshot >= t.snapshot_every then
    match (t.dir, t.wal) with
    | Some dir, Some wal -> (
        match
          ignore
            (Snapshot.write ~dir
               { Snapshot.seq = t.seq; cases = Store.cases t.store });
          Wal.reset wal
        with
        | () ->
            t.snap_seq <- t.seq;
            t.since_snapshot <- 0
        | exception e -> degrade t (cause_of_exn e))
    | _ -> ()

(* Run one mutating store operation and make it durable.  [op] must
   not raise for reasons the WAL should not see; its [Error] case is
   a clean store-level refusal that logs nothing.  [rollback] undoes
   the in-memory effect when the WAL append fails: the refused
   operation leaves no trace, so the digests clients hold stay
   exactly the acked (and durable) ones. *)
let logged t
    (op : unit -> (string * Wal.op * (unit -> unit), Store.error) result) :
    (string, error) result =
  locked t (fun () ->
      match t.mode with
      | Read_only cause -> Error (Read_only cause)
      | Active -> (
          match op () with
          | Error e -> Error (Store_error e)
          | Ok (digest, wop, rollback) -> (
              match t.wal with
              | None ->
                  (* No WAL, but the sequence cursor still advances:
                     every acked mutation gets a fresh seq, so clients
                     can audit retried patches (a duplicate commit
                     shows as two acks with distinct seqs and the same
                     digest) in memory-only servers too. *)
                  t.seq <- t.seq + 1;
                  Ok digest
              | Some wal -> (
                  let seq = t.seq + 1 in
                  match Wal.append wal { Wal.seq; op = wop; digest } with
                  | () ->
                      t.seq <- seq;
                      t.since_snapshot <- t.since_snapshot + 1;
                      maybe_snapshot t;
                      Ok digest
                  | exception e ->
                      let cause = cause_of_exn e in
                      rollback ();
                      degrade t cause;
                      Error (Read_only cause)))))

let put ?(ruleset = Argus_gsn.Wellformed.Standard) t structure =
  logged t (fun () ->
      let prior = Store.find t.store (Store.digest_of structure) in
      let digest = Store.put ~ruleset t.store structure in
      let rollback () =
        (* A re-put replaced live state (last ruleset wins): restore
           it; a fresh put just un-binds. *)
        match prior with
        | None -> Store.remove t.store digest
        | Some (old_ruleset, old_structure) ->
            ignore (Store.put ~ruleset:old_ruleset t.store old_structure)
      in
      Ok (digest, Wal.Put (ruleset, structure), rollback))

let patch t ~digest edits =
  logged t (fun () ->
      (* Captured before the patch rebinds the case: content
         addressing makes re-putting the old structure restore the
         old digest exactly. *)
      let before = Store.find t.store digest in
      match Store.patch t.store ~digest edits with
      | Error _ as e -> e
      | Ok digest' ->
          let rollback () =
            Store.remove t.store digest';
            match before with
            | Some (ruleset, structure) ->
                ignore (Store.put ~ruleset t.store structure)
            | None -> ()
          in
          Ok (digest', Wal.Patch (digest, edits), rollback))

let verdict t ~digest =
  match Store.verdict t.store ~digest with
  | Ok v -> Ok v
  | Error e -> Error (Store_error e)

let flush t =
  locked t (fun () ->
      match t.wal with
      | None -> ()
      | Some wal -> (
          match Wal.flush wal with
          | () -> ()
          | exception e -> degrade t (cause_of_exn e)))

let close t =
  locked t (fun () ->
      match t.wal with
      | Some wal ->
          (try Wal.flush wal with _ -> ());
          Wal.close wal;
          t.wal <- None
      | None -> ())

(* The stats/health surface: mode, cause, and the durable cursor. *)
let stats_json t =
  locked t (fun () ->
      let mode_fields =
        match t.mode with
        | Active -> [ ("mode", Json.Str "active") ]
        | Read_only cause ->
            [ ("mode", Json.Str "read-only"); ("cause", Json.Str cause) ]
      in
      Json.Obj
        (mode_fields
        @ [
            ("durable", Json.Bool (t.dir <> None));
            ( "data_dir",
              match t.dir with Some d -> Json.Str d | None -> Json.Null );
            ("seq", Json.int t.seq);
            ("snapshot_seq", Json.int t.snap_seq);
            ("cases", Json.int (Store.size t.store));
            ( "digests",
              Json.List
                (List.map
                   (fun (d, _, _) -> Json.Str d)
                   (Store.cases t.store)) );
          ]))
