(** Compacting snapshots of the live case set.

    A snapshot file is the WAL's magic-and-checksum framing around one
    [Marshal]-encoded {!image}; it is written atomically
    (tmp + fsync + rename + directory fsync) and supersedes all older
    generations plus every WAL record with [seq <= image.seq].

    The newest snapshot must parse: the WAL was reset when it was
    written, so falling back to an older generation would silently
    drop the operations between the two — {!read} refuses damaged
    files with a diagnostic instead.

    Fault probes: [store.snapshot.write] (keyed by seq) on {!write},
    [store.recover.read] (key ["snapshot"]) on {!read}. *)

type image = {
  seq : int;  (** Last WAL sequence number the snapshot covers. *)
  cases :
    (string * Argus_gsn.Wellformed.ruleset * Argus_gsn.Structure.t) list;
      (** [(digest, ruleset, structure)], sorted by digest. *)
}

val filename : seq:int -> string
(** [snapshot-%012d.snap]. *)

val latest : string -> (int * string) option
(** The newest snapshot in a directory as [(seq, path)]. *)

val sweep_tmp : string -> unit
(** Delete stale [*.tmp] files left by a crash mid-write. *)

val write : dir:string -> image -> string
(** Write a snapshot atomically; deletes older generations; returns
    the final path.  Raises [Fault.Injected] or [Unix.Unix_error] on
    failure (the tmp file, if any, is swept on next startup). *)

val read : string -> (image, string) result
