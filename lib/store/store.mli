(** Incremental assurance-case store.

    Content-addressed, in-memory, domain-safe.  A case is [put] once
    and addressed by its digest; every [patch] applies an edit batch
    and returns the new digest; [verdict] reassembles the cached
    per-node findings into a result byte-identical to a full
    {!Argus_ir.Fused.check} of the same structure.

    Three layers of reuse make an edit of one node in a 100k-node case
    near-constant instead of a full re-check:

    - a {e node arena} hash-consing per-payload text derivations
      across cases ([store.node_hits]);
    - {e Merkle-style digests} — each node's digest covers its payload
      and its children's digests, folded into an order-independent
      128-bit sum, so a payload edit re-digests only its ancestor
      cone;
    - a {e verdict memo} keyed by a digest of exactly the inputs each
      node's findings read ([store.reused_verdicts] counts reuse,
      [store.dirty_cone] counts nodes actually re-checked).

    All operations are serialised by an internal mutex; the store may
    be shared freely across domains.  The gauge [store.nodes] tracks
    live nodes across cases. *)

type t
(** A store: cases keyed by digest, plus the shared arena and memo. *)

type edit =
  | Set_text of Argus_core.Id.t * string
      (** Replace a node's text, keeping type, status, annotations,
          formal rendering and evidence citation.  The incremental
          fast path: an all-[Set_text] batch re-checks only the dirty
          cone. *)
  | Add_node of Argus_gsn.Node.t
  | Remove_node of Argus_core.Id.t
  | Link of Argus_gsn.Structure.link * Argus_core.Id.t * Argus_core.Id.t
      (** [Link (kind, src, dst)]. *)
  | Unlink of Argus_gsn.Structure.link * Argus_core.Id.t * Argus_core.Id.t

type error =
  | Unknown_digest of string  (** No case under that digest. *)
  | Bad_edit of string  (** The batch references a node that is not there. *)

val error_message : error -> string

type verdict = {
  vdigest : string;  (** The digest the verdict is for. *)
  result : Argus_ir.Fused.result;
      (** Byte-identical to [Fused.check] of the same structure. *)
  confidence : float;
      (** Root confidence under {!default_trust}, memoized across
          text edits (confidence never reads node text). *)
  from_memo : bool;
      (** The fully-assembled verdict was already cached — no
          assembly ran at all. *)
}

val default_trust : Argus_core.Evidence.t -> float
(** Uniform 0.9, the experiments' baseline trust. *)

val create : ?memo_capacity:int -> unit -> t
(** [memo_capacity] (default [2^18]) bounds both the arena and the
    verdict memo; FIFO eviction, and eviction never changes results —
    a miss just re-derives. *)

val put :
  ?ruleset:Argus_gsn.Wellformed.ruleset ->
  t ->
  Argus_gsn.Structure.t ->
  string
(** Intern a case and return its digest.  Structurally equal cases
    digest equal regardless of insertion order; re-putting an existing
    digest replaces its state (the last [?ruleset] wins). *)

val patch : t -> digest:string -> edit list -> (string, error) result
(** Apply an edit batch to the case at [digest]; the case is re-bound
    under the returned new digest (the old digest is released).  A
    failed batch leaves the store untouched. *)

val verdict : t -> digest:string -> (verdict, error) result
(** The full diagnostic report and root confidence of the case at
    [digest], assembled from cached per-node findings. *)

val digest_of : Argus_gsn.Structure.t -> string
(** The digest [put] would assign, without storing anything. *)

val mem : t -> string -> bool
val case : t -> string -> Argus_gsn.Structure.t option

val find :
  t ->
  string ->
  (Argus_gsn.Wellformed.ruleset * Argus_gsn.Structure.t) option
(** Like {!case}, with the ruleset the case was put under. *)

val size : t -> int

val remove : t -> string -> unit
(** Drop the case bound at a digest (a no-op when absent).  Arena and
    memo entries it contributed stay cached until evicted — eviction
    never changes results.  {!Durable} uses this to roll back an
    operation whose WAL append failed. *)

val cases :
  t -> (string * Argus_gsn.Wellformed.ruleset * Argus_gsn.Structure.t) list
(** Every live case as [(digest, ruleset, structure)], sorted by
    digest — the deterministic enumeration snapshots serialise. *)
