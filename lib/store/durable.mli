(** The durable store: {!Store.t} + WAL + snapshots + degraded mode.

    The layer the service talks to.  With a data dir, every committed
    [put]/[patch] is appended to the WAL (commit order = log order,
    enforced by one mutex) under the configured {!Wal.sync} policy,
    and every [snapshot_every] operations the live case set is
    compacted into a snapshot and the WAL reset.  Without a data dir
    it is a transparent in-memory passthrough.

    Any I/O failure on the write path — real, or injected through the
    [store.wal.append] / [store.wal.fsync] / [store.snapshot.write]
    probes — trips the handle into a {e sticky} read-only mode: reads
    keep answering from the consistent in-memory state, writes answer
    [Error (Read_only cause)], and {!stats_json} exposes the mode and
    cause.  The failed operation itself is never acked, so the client
    retries against a recovered server and durability is not
    over-promised. *)

type t

type mode = Active | Read_only of string

type error =
  | Store_error of Store.error
  | Read_only of string  (** The degraded-mode refusal, with cause. *)

val error_message : error -> string

val create :
  ?dir:string ->
  ?sync:Wal.sync ->
  ?snapshot_every:int ->
  ?memo_capacity:int ->
  unit ->
  (t * string, string) result
(** Open (recovering if [dir] holds prior state) or create a store.
    [snapshot_every] (default 1024; 0 = never) counts logged
    operations between compactions.  [Ok (t, summary)] carries a
    one-line recovery summary for the startup log; [Error diagnostic]
    is a refusal — corrupt snapshot, mid-stream WAL corruption, or a
    digest mismatch (see {!Recover}). *)

val store : t -> Store.t
(** The underlying in-memory store (for read paths and tests). *)

val mode : t -> mode
val durable : t -> bool

val seq : t -> int
(** The sequence cursor: advances by one on every acked mutation
    ({!put}, {!patch}) whether or not a WAL is attached — on durable
    stores it is the last WAL sequence number appended.  Echoed in the
    server's put/patch acks so a client that retried a write can audit
    whether it committed once or twice (the digest alone cannot tell:
    the store is content-addressed, so a replay converges to the same
    digest). *)

val put :
  ?ruleset:Argus_gsn.Wellformed.ruleset ->
  t ->
  Argus_gsn.Structure.t ->
  (string, error) result

val patch : t -> digest:string -> Store.edit list -> (string, error) result

val verdict : t -> digest:string -> (Store.verdict, error) result

val flush : t -> unit
(** fsync the WAL regardless of sync policy (graceful drain); never
    raises — a failing flush degrades to read-only instead. *)

val close : t -> unit
(** Flush and close the WAL handle. *)

val stats_json : t -> Argus_core.Json.t
(** Mode, cause (when read-only), durability config, sequence
    cursors, case count and digest list — merged into the server's
    [health]/[stats] payloads. *)
