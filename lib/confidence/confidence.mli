(** Confidence propagation and evidence-sufficiency analysis.

    Two pieces of machinery the paper discusses:

    {b Confidence propagation} — the "BBN modelling" style assessment
    the paper cites when warning that an asserted rule can artificially
    raise mechanically-assessed confidence.  {!assess} propagates
    evidence trust up the argument: solutions carry their evidence's
    trust; a strategy combines its subgoals conjunctively (noisy-AND,
    i.e. product); a goal with several supporters combines them
    disjunctively (noisy-OR).  The numbers are not calibrated
    probabilities — the paper is explicit that no proposed mechanism "is
    known to be adequate in all cases" — but the machinery suffices to
    run the Section VI.E experiment.

    {b Evidence-sufficiency judgment procedures} — the two procedures
    Section VI.E compares: GSN {e path tracing} ({!impact_by_tracing}:
    which claims sit above this evidence?) and Rushby's {e what-if
    probing} ({!probe_premise}: retract a premise, re-run the checker,
    see whether the conclusion still follows). *)

val assess :
  trust:(Argus_core.Evidence.t -> float) ->
  Argus_gsn.Structure.t ->
  float Argus_core.Id.Map.t
(** Confidence per node id, in [0,1].  Leaf goals with no support get
    0; solutions citing unregistered evidence get 0; undeveloped nodes
    get 0; contextual nodes are not scored.  Cycles are cut at repeat
    visits (scored 0 on the back edge). *)

val root_confidence :
  trust:(Argus_core.Evidence.t -> float) -> Argus_gsn.Structure.t -> float
(** Confidence of the (first) root, 0 for an empty structure. *)

val impact_by_tracing :
  Argus_gsn.Structure.t -> Argus_core.Id.t -> Argus_core.Id.t list
(** [impact_by_tracing s evidence_id]: every goal or strategy on a path
    from a solution citing that evidence up to a root — the set of
    claims whose support the assessor must reconsider.  Order:
    discovery order from the citing solutions upward. *)

val sensitivity :
  trust:(Argus_core.Evidence.t -> float) ->
  Argus_gsn.Structure.t ->
  Argus_core.Id.t ->
  float
(** Drop in root confidence when the given evidence item's trust is
    forced to zero — a numeric evidence-sufficiency measure. *)

val probe_premise :
  ?budget:Argus_rt.Budget.t ->
  Argus_logic.Natded.checked ->
  Argus_logic.Prop.t ->
  bool
(** Rushby's what-if: [probe_premise checked p] is whether the checked
    conclusion still follows (by SAT entailment) from the premises with
    [p] removed.  [false] means the premise is load-bearing.  The
    budget (default unlimited) governs the SAT queries; on exhaustion
    treat the answer as unknown (check {!Argus_rt.Budget.exhausted}). *)

val load_bearing_premises :
  ?budget:Argus_rt.Budget.t ->
  Argus_logic.Natded.checked ->
  Argus_logic.Prop.t list
(** Premises whose removal breaks the conclusion. *)

val probe_counterexample :
  ?budget:Argus_rt.Budget.t ->
  Argus_logic.Natded.checked ->
  Argus_logic.Prop.t ->
  (string * bool) list option
(** The other half of Rushby's what-if exploration: when retracting the
    premise breaks the conclusion, a countermodel — a valuation
    satisfying the remaining premises but not the conclusion — that the
    evaluator can "inspect".  [None] when the conclusion survives the
    retraction. *)
