module Id = Argus_core.Id
module Evidence = Argus_core.Evidence
module Prop = Argus_logic.Prop
module Sat = Argus_logic.Sat
module Natded = Argus_logic.Natded
module Structure = Argus_gsn.Structure
module Node = Argus_gsn.Node

let noisy_or xs = 1.0 -. List.fold_left (fun acc x -> acc *. (1.0 -. x)) 1.0 xs
let noisy_and xs = List.fold_left ( *. ) 1.0 xs

let assess ~trust structure =
  (* One pass over the link list up front: [Structure.children] scans
     every link on every call, which turns the assessment quadratic on
     big cases (the store's 100k-node benchmarks made it the single
     slowest pass in the repo).  The grouped map preserves link order,
     so the child fold — and therefore every float — is unchanged. *)
  let children_map =
    List.fold_left
      (fun m (kind, src, dst) ->
        if kind = Structure.Supported_by then
          Id.Map.update src
            (function None -> Some [ dst ] | Some l -> Some (dst :: l))
            m
        else m)
      Id.Map.empty (Structure.links structure)
    |> Id.Map.map List.rev
  in
  let children id =
    Option.value (Id.Map.find_opt id children_map) ~default:[]
  in
  let memo = ref Id.Map.empty in
  let rec conf visiting id =
    match Id.Map.find_opt id !memo with
    | Some c -> c
    | None ->
        if Id.Set.mem id visiting then 0.0
        else
          let c =
            match Structure.find id structure with
            | None -> 0.0
            | Some n -> (
                let visiting = Id.Set.add id visiting in
                let kids = children id in
                let kid_confs = List.map (conf visiting) kids in
                match n.Node.node_type with
                | Node.Solution -> (
                    match n.Node.evidence with
                    | None -> 0.0
                    | Some ev_id -> (
                        match Structure.find_evidence ev_id structure with
                        | None -> 0.0
                        | Some ev -> trust ev))
                | Node.Strategy ->
                    if kids = [] then 0.0 else noisy_and kid_confs
                | Node.Goal | Node.Away_goal _ ->
                    if
                      n.Node.status = Node.Undeveloped
                      || n.Node.status = Node.Undeveloped_uninstantiated
                    then 0.0
                    else if kids = [] then 0.0
                    else noisy_or kid_confs
                | Node.Module_ref _ | Node.Contract _ ->
                    if kids = [] then 0.0 else noisy_or kid_confs
                | Node.Context | Node.Assumption | Node.Justification -> 0.0)
          in
          memo := Id.Map.add id c !memo;
          c
  in
  List.iter
    (fun n ->
      if not (Node.is_contextual n.Node.node_type) then
        ignore (conf Id.Set.empty n.Node.id))
    (Structure.nodes structure);
  !memo

let root_confidence ~trust structure =
  match Structure.roots structure with
  | [] -> 0.0
  | root :: _ -> (
      match Id.Map.find_opt root (assess ~trust structure) with
      | Some c -> c
      | None -> 0.0)

let impact_by_tracing structure evidence_id =
  let citing =
    List.filter
      (fun n ->
        n.Node.node_type = Node.Solution
        && n.Node.evidence = Some evidence_id)
      (Structure.nodes structure)
  in
  let seen = ref Id.Set.empty in
  let order = ref [] in
  let rec up id =
    List.iter
      (fun parent ->
        if not (Id.Set.mem parent !seen) then begin
          seen := Id.Set.add parent !seen;
          order := parent :: !order;
          up parent
        end)
      (Structure.parents Structure.Supported_by id structure)
  in
  List.iter (fun n -> up n.Node.id) citing;
  List.rev !order

let sensitivity ~trust structure evidence_id =
  let baseline = root_confidence ~trust structure in
  let trust' ev =
    if Id.equal ev.Evidence.id evidence_id then 0.0 else trust ev
  in
  baseline -. root_confidence ~trust:trust' structure

let probe_premise ?budget checked premise =
  let remaining =
    List.filter
      (fun p -> not (Prop.equal p premise))
      checked.Natded.premises
  in
  Sat.entails ?budget remaining checked.Natded.conclusion

let load_bearing_premises ?budget checked =
  List.filter
    (fun p -> not (probe_premise ?budget checked p))
    checked.Natded.premises

let probe_counterexample ?budget checked premise =
  if probe_premise ?budget checked premise then None
  else
    let remaining =
      List.filter
        (fun p -> not (Prop.equal p premise))
        checked.Natded.premises
    in
    Sat.models ?budget
      (Prop.And (Prop.conj remaining, Prop.Not checked.Natded.conclusion))
