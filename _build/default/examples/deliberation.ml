(* The Tolchinsky et al. scenario (Section III.O of the paper): an
   on-line deliberation dialogue about a safety-critical action — organ
   transplantation — whose acceptability is computed, non-monotonically,
   from the argumentation framework the moves build.

   Run with: dune exec examples/deliberation.exe *)

module Dialogue = Argus_dialectic.Dialogue
module Af = Argus_dialectic.Af
module Id = Argus_core.Id

let show d =
  Format.printf "%a" Dialogue.pp d;
  let verdict =
    match Dialogue.decision d with
    | Dialogue.Proceed -> "PROCEED"
    | Dialogue.Do_not_proceed -> "DO NOT PROCEED"
    | Dialogue.Undecided -> "UNDECIDED"
  in
  Format.printf "  -> decision: %s@.@." verdict

let () =
  Format.printf "Deliberation dialogue for a safety-critical action@.@.";

  let d0 =
    Dialogue.start ~id:"P" ~by:"transplant-unit"
      "Transplant donor organ D into recipient R"
  in
  Format.printf "Move 1 - the proposal:@.";
  show d0;

  let d1 =
    Dialogue.move ~id:"O1" ~by:"nephrologist"
      ~kind:(Dialogue.Objection (Id.of_string "P"))
      "Donor history suggests hepatitis risk" d0
  in
  Format.printf "Move 2 - a safety factor is raised:@.";
  show d1;

  let d2 =
    Dialogue.move ~id:"R1" ~by:"virologist"
      ~kind:(Dialogue.Rebuttal (Id.of_string "O1"))
      "Serology rules out active infection" d1
  in
  Format.printf "Move 3 - the factor is rebutted (non-monotonic flip):@.";
  show d2;

  let d3 =
    Dialogue.move ~id:"O2" ~by:"immunologist"
      ~kind:(Dialogue.Objection (Id.of_string "P"))
      "Crossmatch is borderline positive" d2
  in
  Format.printf "Move 4 - a second, so far unanswered factor:@.";
  show d3;

  (* The induced framework, and its semantics beyond grounded. *)
  let af = Dialogue.framework d3 in
  Format.printf "Induced argumentation framework:@.%a@." Af.pp af;
  Format.printf "grounded extension: {%s}@."
    (String.concat ", "
       (List.map Id.to_string (Id.Set.elements (Af.grounded af))));
  List.iter
    (fun ext ->
      Format.printf "preferred extension: {%s}@."
        (String.concat ", " (List.map Id.to_string (Id.Set.elements ext))))
    (Af.preferred af);

  (* Protocol checking. *)
  match Dialogue.check d3 with
  | [] -> Format.printf "@.dialogue is protocol-clean@."
  | ds ->
      List.iter
        (fun diag -> Format.printf "%a@." Argus_core.Diagnostic.pp diag)
        ds
