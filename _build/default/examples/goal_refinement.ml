(* The other half of the Brunel-Cazin proposal (Section III.G): develop
   a KAOS goal structure first, verify its refinements mechanically,
   then derive the safety argument from it.

   Run with: dune exec examples/goal_refinement.exe *)

module Kaos = Argus_kaos.Kaos
module Ltl = Argus_ltl.Ltl
module Id = Argus_core.Id
module Structure = Argus_gsn.Structure
module Wellformed = Argus_gsn.Wellformed

let ltl = Ltl.of_string_exn

let uav =
  Kaos.empty
  |> Kaos.add
       (Kaos.goal
          ~formal:(ltl "G (close -> F clear)")
          "G_avoid" "Obstacles, once close, are eventually cleared")
  |> Kaos.add ~parent:"G_avoid"
       (Kaos.goal
          ~formal:(ltl "G (close -> tracked)")
          "G_track" "Close obstacles are tracked")
  |> Kaos.add ~parent:"G_avoid"
       (Kaos.goal
          ~formal:(ltl "G (tracked -> F clear)")
          "G_resolve" "Tracked obstacles are eventually cleared")
  |> Kaos.add ~parent:"G_track"
       (Kaos.requirement ~agent:"daa_software" "R_sense"
          "Sensor fusion reports close obstacles")
  |> Kaos.add ~parent:"G_resolve"
       (Kaos.expectation ~agent:"pilot" "E_manoeuvre"
          "Pilot performs the avoidance manoeuvre")

(* A deliberately broken model: the sub-goal is too weak. *)
let broken =
  Kaos.empty
  |> Kaos.add (Kaos.goal ~formal:(ltl "G safe") "G_top" "Always safe")
  |> Kaos.add ~parent:"G_top"
       (Kaos.goal ~formal:(ltl "F safe") "G_weak" "Eventually safe")
  |> Kaos.add ~parent:"G_weak"
       (Kaos.requirement ~agent:"sw" "R_w" "Software raises safe once")

let show_verdicts model =
  List.iter
    (fun (id, verdict) ->
      match verdict with
      | Kaos.Verified_bounded n ->
          Format.printf "  %-10s refinement verified (no counterexample in \
                         %d traces)@."
            (Id.to_string id) n
      | Kaos.Refuted trace ->
          Format.printf "  %-10s REFUTED by a %d-state lasso@."
            (Id.to_string id) (Ltl.Trace.length trace)
      | Kaos.Not_applicable ->
          Format.printf "  %-10s (not formalised)@." (Id.to_string id))
    (Kaos.verify_all model)

let () =
  Format.printf "KAOS goal model with mechanical refinement checking@.@.";
  Format.printf "%a@." Kaos.pp uav;
  Format.printf "Refinement verification (bounded refutation):@.";
  show_verdicts uav;

  Format.printf "@.A broken model:@.";
  Format.printf "%a@." Kaos.pp broken;
  show_verdicts broken;

  (* Derive the argument, as the surveyed proposal describes: the formal
     argument's structure reflects the goal structure's. *)
  let gsn = Kaos.to_gsn uav in
  Format.printf "@.Derived GSN argument (%d nodes, well-formed: %b):@.%a"
    (Structure.size gsn)
    (Wellformed.is_well_formed gsn)
    Structure.pp_outline gsn;
  Format.printf
    "@.As Brunel & Cazin themselves note: the ultimate objective is to \
     convince a certification authority, not a temporal-logic specialist.@."
