(* Quickstart: write a small safety case in the DSL, check it, query it,
   render it, and see what the checkers say when it is broken.

   Run with: dune exec examples/quickstart.exe *)

module Dsl = Argus_dsl.Dsl
module Structure = Argus_gsn.Structure
module Wellformed = Argus_gsn.Wellformed
module Query = Argus_gsn.Query
module Informal = Argus_fallacy.Informal
module Diagnostic = Argus_core.Diagnostic

let case_text =
  {|
case "Industrial press safety" {
  enum severity { catastrophic hazardous major minor }
  attr hazard (string, severity)

  evidence E1 analysis "Interlock timing analysis" source "report IA-7"
  evidence E2 test-results "Two-hand control test campaign"
  evidence E3 field-data "Five years of incident-free operation at pilot site"

  goal G1 "The press is acceptably safe for operator use" {
    in-context-of C1
    supported-by S1
  }
  strategy S1 "Argument over each identified hazard" {
    in-context-of J1
    supported-by G2, G3
  }
  goal G2 "Hazard: crush injury during die change is acceptably managed" {
    meta "hazard \"crush\" catastrophic"
    supported-by Sn1, Sn2
  }
  goal G3 "Hazard: unexpected restart is acceptably managed" {
    meta "hazard \"restart\" hazardous"
    supported-by Sn3
  }
  solution Sn1 "Interlock analysis results" { evidence E1 }
  solution Sn2 "Two-hand control test results" { evidence E2 }
  solution Sn3 "Operational history" { evidence E3 }
  context C1 "Single-operator workshops, EU machinery directive"
  justification J1 "Hazard list from the type-C standard plus HAZOP"
}
|}

let () =
  (* 1. Parse. *)
  let case = Dsl.parse_exn ~filename:"press.arg" case_text in
  Format.printf "Parsed %S: %d nodes, %d evidence items@.@." case.Dsl.title
    (Structure.size case.Dsl.structure)
    (List.length (Structure.evidence case.Dsl.structure));

  (* 2. Check well-formedness, metadata and informal-fallacy lints. *)
  let report label ds =
    Format.printf "%s:@." label;
    if ds = [] then Format.printf "  (clean)@."
    else List.iter (fun d -> Format.printf "  %a@." Diagnostic.pp d) ds
  in
  report "GSN well-formedness" (Wellformed.check case.Dsl.structure);
  report "Metadata vs ontology" (Dsl.validate_metadata case);
  report "Informal-fallacy lints" (Informal.check_structure case.Dsl.structure);

  (* 3. Query: which catastrophic hazards are argued, and the
     traceability view to them. *)
  let q = Result.get_ok (Query.of_string "has hazard") in
  Format.printf "@.Hazard goals:@.";
  List.iter
    (fun n -> Format.printf "  %a@." Argus_gsn.Node.pp n)
    (Query.select q case.Dsl.structure);

  (* 4. Render the argument as an outline and as Graphviz. *)
  Format.printf "@.Outline:@.%a" Structure.pp_outline case.Dsl.structure;
  Format.printf "@.Graphviz header: %s...@."
    (String.sub (Structure.to_dot case.Dsl.structure) 0 24);

  (* 5. Break it and watch the checker object: support the top goal with
     a context element (a GSN type error). *)
  let broken =
    Structure.connect Structure.Supported_by
      ~src:(Argus_core.Id.of_string "G1")
      ~dst:(Argus_core.Id.of_string "C1")
      case.Dsl.structure
  in
  Format.printf "@.";
  report "After breaking it" (Wellformed.check broken)
