(* The Brunel-Cazin scenario: a UAV safety argument whose claims carry
   LTL formalisations that are mechanically checked against behaviour
   traces — the "Detect and Avoid function is correct" example from the
   paper, plus the confidence machinery over the same argument.

   Run with: dune exec examples/uav_safety.exe *)

module Ltl = Argus_ltl.Ltl
module Structure = Argus_gsn.Structure
module Node = Argus_gsn.Node
module Wellformed = Argus_gsn.Wellformed
module Confidence = Argus_confidence.Confidence
module Evidence = Argus_core.Evidence
module Id = Argus_core.Id

(* The formalised claims of the KAOS-ish goal structure. *)
let daa_correct =
  Ltl.of_string_exn
    "G (obstacle_close -> (obstacle_tracked U obstacle_cleared))"

let link_monitored = Ltl.of_string_exn "G (link_lost -> F return_home)"
let geofence = Ltl.of_string_exn "G inside_geofence"

(* Simulated flight traces: one nominal lasso, one with a DAA failure. *)
let nominal =
  Ltl.Trace.make
    ~prefix:
      [
        [ "inside_geofence" ];
        [ "inside_geofence"; "obstacle_close"; "obstacle_tracked" ];
        [ "inside_geofence"; "obstacle_tracked" ];
        [ "inside_geofence"; "obstacle_cleared" ];
      ]
    ~loop:[ [ "inside_geofence" ] ]

let faulty =
  Ltl.Trace.make
    ~prefix:
      [
        [ "inside_geofence" ];
        [ "inside_geofence"; "obstacle_close" ];
        (* Tracking drops before the obstacle clears. *)
      ]
    ~loop:[ [ "inside_geofence" ] ]

let check_claim name claim traces =
  List.iter
    (fun (trace_name, trace) ->
      Format.printf "  %-28s on %-8s : %s@." name trace_name
        (if Ltl.holds trace claim then "HOLDS" else "VIOLATED"))
    traces

(* The argument: claims carry their LTL text in the node, the evidence
   is the trace-checking itself. *)
let argument =
  Structure.of_nodes
    ~links:
      [
        (Structure.Supported_by, "G1", "S1");
        (Structure.Supported_by, "S1", "G_daa");
        (Structure.Supported_by, "S1", "G_link");
        (Structure.Supported_by, "S1", "G_fence");
        (Structure.Supported_by, "G_daa", "Sn_daa");
        (Structure.Supported_by, "G_link", "Sn_link");
        (Structure.Supported_by, "G_fence", "Sn_fence");
        (Structure.In_context_of, "G1", "C1");
      ]
    ~evidence:
      [
        Evidence.make ~id:(Id.of_string "E_daa") ~kind:Evidence.Simulation
          "DAA claims checked on simulated encounter traces";
        Evidence.make ~id:(Id.of_string "E_link") ~kind:Evidence.Test_results
          "link-loss drills";
        Evidence.make ~id:(Id.of_string "E_fence") ~kind:Evidence.Analysis
          "geofence envelope analysis";
      ]
    [
      Node.goal "G1" "The UAV is acceptably safe to operate in segregated airspace";
      Node.strategy "S1" "Argument over the safety functions";
      Node.goal "G_daa" "The Detect-and-Avoid function is correct";
      Node.goal "G_link" "Link loss is handled by autonomous return";
      Node.goal "G_fence" "The UAV remains inside its geofence";
      Node.solution ~evidence:"E_daa" "Sn_daa" "Trace checking results";
      Node.solution ~evidence:"E_link" "Sn_link" "Drill results";
      Node.solution ~evidence:"E_fence" "Sn_fence" "Envelope analysis";
      Node.context "C1" "Segregated airspace, day VMC";
    ]

let () =
  Format.printf "UAV safety case (Brunel-Cazin style)@.@.";
  Format.printf "Mechanical validation of the formalised claims:@.";
  let traces = [ ("nominal", nominal); ("faulty", faulty) ] in
  check_claim "DAA correct" daa_correct traces;
  check_claim "link monitored" link_monitored traces;
  check_claim "geofence" geofence traces;

  (* The formal check is evidence, not the whole case: the argument
     still has to be well-formed and reviewed. *)
  Format.printf "@.GSN well-formedness: %s@."
    (if Wellformed.is_well_formed argument then "ok" else "BROKEN");

  (* Confidence and evidence sufficiency. *)
  let trust (ev : Evidence.t) =
    match Evidence.kind_to_string ev.Evidence.kind with
    | "simulation" -> 0.7
    | "test-results" -> 0.85
    | _ -> 0.9
  in
  Format.printf "Root confidence: %.3f@."
    (Confidence.root_confidence ~trust argument);
  List.iter
    (fun eid ->
      Format.printf "  sensitivity to %-7s : %.3f (touches %d claims)@." eid
        (Confidence.sensitivity ~trust argument (Id.of_string eid))
        (List.length
           (Confidence.impact_by_tracing argument (Id.of_string eid))))
    [ "E_daa"; "E_link"; "E_fence" ];

  (* And the paper's caution: the pretty LTL names bind to reality only
     informally.  Rename the atoms and the check is as "valid" as ever. *)
  let renamed =
    Ltl.of_string_exn "G (bank_close -> (bank_tracked U bank_cleared))"
  in
  let renamed_trace =
    Ltl.Trace.make
      ~prefix:[ [ "bank_close"; "bank_tracked" ]; [ "bank_cleared" ] ]
      ~loop:[ [] ]
  in
  Format.printf
    "@.Same structure, misleading names, still 'valid': %b  (formality \
     cannot check what the symbols mean)@."
    (Ltl.holds renamed_trace renamed)
