(* The Haley et al. security requirements satisfaction argument from the
   paper's Section III.K, end to end: the eleven-step formal outer proof
   (I->V, C->H, Y->V&C, D->Y, D |- D->H), the extended-Toulmin inner
   arguments supporting its trust assumptions, and the satisfaction
   checker tying them together.

   Run with: dune exec examples/security_case.exe *)

module Prop = Argus_logic.Prop
module Natded = Argus_logic.Natded
module Toulmin = Argus_toulmin.Toulmin
module Satisfaction = Argus_toulmin.Satisfaction
module Confidence = Argus_confidence.Confidence
module Diagnostic = Argus_core.Diagnostic

let p = Prop.of_string_exn

(* Symbols, as Haley et al. define them in natural language first:
   i = identification provided, v = credentials valid, c = HR credential
   shown, h = requester is an HR member, y = token displayed,
   d = data may be displayed...  Here: D = display request granted only
   to HR members (the requirement is d -> h). *)
let outer =
  Natded.
    [
      { formula = p "i -> v"; rule = Premise };
      { formula = p "c -> h"; rule = Premise };
      { formula = p "y -> v & c"; rule = Premise };
      { formula = p "d -> y"; rule = Premise };
      { formula = p "d"; rule = Premise };
      { formula = p "y"; rule = Imp_elim (4, 5) };
      { formula = p "v & c"; rule = Imp_elim (3, 6) };
      { formula = p "v"; rule = And_elim_left 7 };
      { formula = p "c"; rule = And_elim_right 7 };
      { formula = p "h"; rule = Imp_elim (2, 9) };
      { formula = p "d -> h"; rule = Imp_intro (5, 10) };
    ]

(* The inner argument the paper reproduces, verbatim. *)
let inner_c_h =
  Toulmin.of_string_exn
    {|
      given grounds G2: "Valid credentials are given only to HR members"
      warranted by (
        given grounds G3: "Credentials are given in person"
        warranted by G4: "Credential administrators are honest and reliable"
        thus claim C1: "Credential administration is correct")
      thus claim P2: "HR credentials provided --> HR member"
      rebutted by R1: "HR member is dishonest"
    |}

let simple_inner label text =
  Toulmin.of_string_exn
    (Printf.sprintf
       {|given grounds G_%s: "Domain analysis of the workflow"
         warranted by W_%s: "Confirmed with the HR department"
         thus claim C_%s: "%s"|}
       label label label text)

let satisfaction =
  {
    Satisfaction.requirement = p "d -> h";
    outer;
    inner =
      [
        (p "c -> h", inner_c_h);
        (p "y -> v & c", simple_inner "y" "Tokens carry valid credentials");
        (p "d -> y", simple_inner "d" "Display requires a shown token");
      ];
  }

let () =
  Format.printf "Security requirements satisfaction argument (Haley et al.)@.@.";
  Format.printf "Formal outer argument:@.%a@." Natded.pp outer;
  (match Natded.check outer with
  | Ok checked ->
      Format.printf "Outer proof checks; it proves %s@.@."
        (Prop.to_string (Natded.theorem checked));
      Format.printf "Trust assumptions to be supported informally:@.";
      List.iter
        (fun f -> Format.printf "  %s@." (Prop.to_string f))
        (Satisfaction.trust_assumptions satisfaction);
      (* Rushby-style what-if probing over the same proof. *)
      Format.printf "@.Load-bearing premises (what-if probing):@.";
      List.iter
        (fun f -> Format.printf "  %s@." (Prop.to_string f))
        (Confidence.load_bearing_premises checked)
  | Error ds -> Format.printf "%a@." Diagnostic.pp_report ds);

  Format.printf "@.Inner argument for c -> h (extended Toulmin notation):@.";
  Format.printf "%a@.@." Toulmin.pp inner_c_h;

  Format.printf "Satisfaction check:@.";
  (match Satisfaction.check satisfaction with
  | [] -> Format.printf "  fully satisfied, no findings@."
  | ds -> List.iter (fun d -> Format.printf "  %a@." Diagnostic.pp d) ds);

  (* What the formal part cannot see: R1 rebuts the trust assumption.
     Drop the inner argument for c -> h and the checker objects. *)
  let broken =
    { satisfaction with Satisfaction.inner = List.tl satisfaction.Satisfaction.inner }
  in
  Format.printf "@.Without the inner argument for c -> h:@.";
  List.iter
    (fun d -> Format.printf "  %a@." Diagnostic.pp d)
    (Satisfaction.check broken)
