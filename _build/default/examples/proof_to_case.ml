(* The Basir/Denney/Fischer pipeline: derive a GSN safety argument from
   a natural-deduction proof, then apply the abstraction pass their
   papers call for ("the straightforward conversion ... typically
   contains too many details").

   Run with: dune exec examples/proof_to_case.exe *)

module Prop = Argus_logic.Prop
module Natded = Argus_logic.Natded
module Proofgen = Argus_proofgen.Proofgen
module Structure = Argus_gsn.Structure
module Wellformed = Argus_gsn.Wellformed
module Cae = Argus_cae.Cae

let p = Prop.of_string_exn

(* A small code-safety proof: initialisation and bounds checking imply
   no out-of-range write; no out-of-range write and valid units imply
   the hazard is absent. *)
let proof =
  Natded.
    [
      { formula = p "init_ok"; rule = Premise };
      { formula = p "bounds_checked"; rule = Premise };
      { formula = p "units_valid"; rule = Premise };
      { formula = p "init_ok & bounds_checked -> no_oob_write"; rule = Premise };
      { formula = p "no_oob_write & units_valid -> hazard_absent"; rule = Premise };
      { formula = p "init_ok & bounds_checked"; rule = And_intro (1, 2) };
      { formula = p "no_oob_write"; rule = Imp_elim (4, 6) };
      { formula = p "no_oob_write & units_valid"; rule = And_intro (7, 3) };
      { formula = p "hazard_absent"; rule = Imp_elim (5, 8) };
    ]

let () =
  Format.printf "Proof-to-argument generation (Basir, Denney & Fischer)@.@.";
  Format.printf "Input proof:@.%a@." Natded.pp proof;
  match Natded.check proof with
  | Error ds ->
      Format.printf "proof rejected: %a@." Argus_core.Diagnostic.pp_report ds
  | Ok checked ->
      let generated = Proofgen.generate checked in
      Format.printf "Generated GSN argument (%d nodes, well-formed: %b):@.%a@."
        (Proofgen.node_count generated)
        (Wellformed.is_well_formed generated)
        Structure.pp_outline generated;

      let abstracted = Proofgen.abstract generated in
      Format.printf
        "After abstraction (%d nodes -> %d nodes, still well-formed: %b):@.%a@."
        (Proofgen.node_count generated)
        (Proofgen.node_count abstracted)
        (Wellformed.is_well_formed abstracted)
        Structure.pp_outline abstracted;

      (* The same argument in the other notation the paper surveys. *)
      let cae = Cae.of_gsn abstracted in
      Format.printf "As Claims-Argument-Evidence (well-formed: %b):@.%a@."
        (Cae.is_well_formed cae) Cae.pp_outline cae
