(* The Tun et al. scenario (Section III.P of the paper): selective
   disclosure requirements for a mobile application, formalised in the
   Event Calculus so that "requirement satisfaction can be reasoned
   about" — with the three properties their paper names: information
   availability, denial, and explanation.

   Run with: dune exec examples/privacy_case.exe *)

module Ec = Argus_eventcalc.Eventcalc
module Term = Argus_logic.Term

let t s = Result.get_ok (Term.of_string s)

(* Policy: tapping a subject's icon makes their location visible only
   when the parties are friends; unfriending revokes both the
   relationship and any standing disclosure. *)
let axioms =
  [
    {
      Ec.event = t "tap(user, subject)";
      conditions = [ t "friends(user, subject)" ];
      initiates = [ t "location_visible(user, subject)" ];
      terminates = [];
    };
    {
      Ec.event = t "unfriend(user, subject)";
      conditions = [];
      initiates = [];
      terminates =
        [ t "friends(user, subject)"; t "location_visible(user, subject)" ];
    };
    {
      Ec.event = t "befriend(user, subject)";
      conditions = [];
      initiates = [ t "friends(user, subject)" ];
      terminates = [];
    };
  ]

let narrative =
  [
    (1, t "tap(user, subject)");        (* friends: discloses *)
    (3, t "unfriend(user, subject)");   (* revokes *)
    (4, t "tap(user, subject)");        (* strangers now: must not disclose *)
    (6, t "befriend(user, subject)");
    (7, t "tap(user, subject)");        (* friends again: discloses *)
  ]

let sys = Ec.make ~initially:[ t "friends(user, subject)" ] ~axioms narrative

let () =
  Format.printf "Privacy argument in the Event Calculus (Tun et al.)@.@.";
  Format.printf "Timeline:@.%a@." Ec.pp_timeline sys;

  let visible = t "location_visible(user, subject)" in
  let friends = t "friends(user, subject)" in

  (* Property 1: information availability — a friend's tap is answered. *)
  Format.printf "availability (every tap by a friend answered)... %b@."
    (Ec.availability sys ~after:(t "tap(user, subject)") visible);
  (* It is false here precisely because the t=4 tap (as strangers) is
     unanswered - which is the POLICY working.  Restrict to the
     friendly portion: *)
  let friendly_only = Ec.make ~initially:[ friends ] ~axioms [ (1, t "tap(user, subject)") ] in
  Format.printf "availability on a friendly-only narrative........ %b@."
    (Ec.availability friendly_only ~after:(t "tap(user, subject)") visible);

  (* Property 2: denial — location never visible to non-friends. *)
  Format.printf "denial (no disclosure while not friends)......... %b@."
    (Ec.denial sys ~when_not:friends visible);

  (* Property 3: explanation — why is the location visible at t=8? *)
  (match Ec.explanation sys 8 visible with
  | [ (time, e) ] ->
      Format.printf "explanation for visibility at t=8: %s at t=%d@."
        (Term.to_string e) time
  | _ -> Format.printf "no single explanation found@.");

  (* A leaky variant violates denial — the check that makes the formal
     policy argument useful. *)
  let leaky =
    Ec.make ~initially:[]
      ~axioms:
        [
          {
            Ec.event = t "tap(user, subject)";
            conditions = [];
            initiates = [ visible ];
            terminates = [];
          };
        ]
      [ (1, t "tap(user, subject)") ]
  in
  Format.printf
    "@.leaky variant (unconditional disclosure): denial = %b  <- caught@."
    (Ec.denial leaky ~when_not:friends visible)
