(* Figure 1 of the paper, end to end: the Desert Bank knowledge base
   formally "proves" that a bank in the desert is adjacent to a river,
   because 'bank' means two different things in two premises.  The
   resolution engine derives the conclusion; the equivocation lint flags
   the symbol a human would catch.

   Run with: dune exec examples/desert_bank.exe *)

module Program = Argus_prolog.Program
module Engine = Argus_prolog.Engine
module Informal = Argus_fallacy.Informal
module Term = Argus_logic.Term

let () =
  Format.printf "Figure 1: a flawed argument that passes formal validation@.@.";
  Format.printf "Knowledge base:@.%s@." Informal.desert_bank_program;

  let goal = Result.get_ok (Term.of_string "adjacent(desert_bank, river)") in
  Format.printf "Query: %a@.@." Term.pp goal;

  (match Engine.prove Informal.desert_bank goal with
  | Some derivation ->
      Format.printf "Formally derivable.  Derivation:@.%a@."
        Engine.pp_derivation derivation
  | None -> Format.printf "Not derivable (unexpected!)@.");

  (* The flaw is invisible to resolution but leaves a footprint: a
     constant used in more than one predicate-argument role. *)
  Format.printf "Equivocation candidates (constants in multiple roles):@.";
  List.iter
    (fun c -> Format.printf "  %s@." c)
    (Informal.equivocation_candidates Informal.desert_bank);

  (* Contrast with a same-shape KB where the middle term really does
     mean one thing: the lint still points at the bridging constant -
     it is a candidate for review, not a verdict.  That is the paper's
     point about informal fallacies: only a human can decide. *)
  let sound_kb =
    Program.of_string_exn
      {|
        is_a(firth_of_forth_branch, riverside_branch).
        flood_risk(riverside_branch).
        flood_risk(X) :- is_a(X, Z), flood_risk(Z).
      |}
  in
  let sound_goal =
    Result.get_ok (Term.of_string "flood_risk(firth_of_forth_branch)")
  in
  Format.printf
    "@.Same argument shape, sound this time: flood_risk(firth_of_forth_branch) \
     derivable = %b@."
    (Engine.provable sound_kb sound_goal);
  Format.printf
    "Lint still lists the bridging constant for review: %s@."
    (String.concat ", " (Informal.equivocation_candidates sound_kb));
  Format.printf
    "@.Moral (Section IV.C): mechanical verification checks form, not \
     meaning; the same derivation is fallacious in one reading and sound \
     in the other.@."
