examples/quickstart.mli:
