examples/security_case.ml: Argus_confidence Argus_core Argus_logic Argus_toulmin Format List Printf
