examples/desert_bank.mli:
