examples/security_case.mli:
