examples/desert_bank.ml: Argus_fallacy Argus_logic Argus_prolog Format List Result String
