examples/uav_safety.ml: Argus_confidence Argus_core Argus_gsn Argus_ltl Format List
