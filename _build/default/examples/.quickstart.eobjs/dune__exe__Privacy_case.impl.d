examples/privacy_case.ml: Argus_eventcalc Argus_logic Format Result
