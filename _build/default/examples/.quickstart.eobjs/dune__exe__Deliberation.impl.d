examples/deliberation.ml: Argus_core Argus_dialectic Format List String
