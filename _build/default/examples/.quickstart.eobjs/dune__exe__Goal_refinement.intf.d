examples/goal_refinement.mli:
