examples/uav_safety.mli:
