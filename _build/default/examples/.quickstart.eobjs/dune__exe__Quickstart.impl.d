examples/quickstart.ml: Argus_core Argus_dsl Argus_fallacy Argus_gsn Format List Result String
