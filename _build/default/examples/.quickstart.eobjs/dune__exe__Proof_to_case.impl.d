examples/proof_to_case.ml: Argus_cae Argus_core Argus_gsn Argus_logic Argus_proofgen Format
