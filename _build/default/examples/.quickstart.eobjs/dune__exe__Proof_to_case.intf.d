examples/proof_to_case.mli:
