examples/goal_refinement.ml: Argus_core Argus_gsn Argus_kaos Argus_ltl Format List
