examples/deliberation.mli:
