examples/privacy_case.mli:
