open Argus_kaos
module Id = Argus_core.Id
module Ltl = Argus_ltl.Ltl
module Diagnostic = Argus_core.Diagnostic
module Wellformed = Argus_gsn.Wellformed

let ltl = Ltl.of_string_exn

(* A sound UAV goal model: the refinement of the avoidance goal is
   logically valid (children jointly entail the parent). *)
let uav =
  Kaos.empty
  |> Kaos.add (Kaos.goal ~formal:(ltl "G (close -> F clear)") "G_avoid"
        "Obstacles are eventually cleared once close")
  |> Kaos.add ~parent:"G_avoid"
       (Kaos.goal ~formal:(ltl "G (close -> tracked)") "G_track"
          "Close obstacles are tracked")
  |> Kaos.add ~parent:"G_avoid"
       (Kaos.goal ~formal:(ltl "G (tracked -> F clear)") "G_resolve"
          "Tracked obstacles are eventually cleared")
  |> Kaos.add ~parent:"G_track"
       (Kaos.requirement ~agent:"daa_software" "R_sense"
          "Sensor fusion reports close obstacles")
  |> Kaos.add ~parent:"G_resolve"
       (Kaos.expectation ~agent:"pilot" "E_manoeuvre"
          "Pilot performs the avoidance manoeuvre")

(* A bogus refinement: the children do not entail the parent. *)
let bogus =
  Kaos.empty
  |> Kaos.add (Kaos.goal ~formal:(ltl "G p") "G_top" "p always holds")
  |> Kaos.add ~parent:"G_top"
       (Kaos.goal ~formal:(ltl "F p") "G_sub" "p eventually holds")
  |> Kaos.add ~parent:"G_sub"
       (Kaos.requirement ~agent:"sw" "R_p" "software raises p")

let test_structure_accessors () =
  Alcotest.(check int) "size" 5 (Kaos.size uav);
  Alcotest.(check int) "roots" 1 (List.length (Kaos.roots uav));
  Alcotest.(check int) "children of root" 2
    (List.length (Kaos.children (Id.of_string "G_avoid") uav))

let test_check_clean () =
  Alcotest.(check (list string)) "clean" []
    (List.map (fun d -> d.Diagnostic.code) (Kaos.check uav))

let test_check_unrefined () =
  let m = Kaos.empty |> Kaos.add (Kaos.goal "G" "bare goal") in
  Alcotest.(check bool) "flagged" true
    (List.mem "kaos/unrefined-goal"
       (List.map (fun d -> d.Diagnostic.code) (Kaos.check m)))

let test_check_refined_requirement () =
  let m =
    Kaos.empty
    |> Kaos.add (Kaos.requirement ~agent:"a" "R" "req")
    |> Kaos.add ~parent:"R" (Kaos.goal "G" "child")
  in
  let codes = List.map (fun d -> d.Diagnostic.code) (Kaos.check m) in
  Alcotest.(check bool) "flagged" true
    (List.mem "kaos/refined-requirement" codes)

let test_check_informal_under_formal () =
  let m =
    Kaos.empty
    |> Kaos.add (Kaos.goal ~formal:(ltl "G p") "G_top" "formal top")
    |> Kaos.add ~parent:"G_top" (Kaos.goal "G_sub" "informal subgoal")
    |> Kaos.add ~parent:"G_sub" (Kaos.requirement ~agent:"a" "R" "leaf")
  in
  Alcotest.(check bool) "warned" true
    (List.mem "kaos/informal-under-formal"
       (List.map (fun d -> d.Diagnostic.code) (Kaos.check m)))

let test_unknown_parent () =
  Alcotest.check_raises "unknown parent"
    (Invalid_argument "Kaos.add: unknown parent Ghost") (fun () ->
      ignore (Kaos.add ~parent:"Ghost" (Kaos.goal "G" "g") Kaos.empty))

let test_verify_sound_refinement () =
  match Kaos.verify_refinement uav (Id.of_string "G_avoid") with
  | Kaos.Verified_bounded n -> Alcotest.(check bool) "traces > 0" true (n > 0)
  | Kaos.Refuted trace ->
      Alcotest.failf "sound refinement refuted on a %d-state lasso"
        (Ltl.Trace.length trace)
  | Kaos.Not_applicable -> Alcotest.fail "should be applicable"

let test_verify_bogus_refinement () =
  match Kaos.verify_refinement bogus (Id.of_string "G_top") with
  | Kaos.Refuted trace ->
      (* The witness genuinely satisfies the child and violates the
         parent. *)
      Alcotest.(check bool) "child holds" true
        (Ltl.holds trace (ltl "F p"));
      Alcotest.(check bool) "parent fails" false
        (Ltl.holds trace (ltl "G p"))
  | Kaos.Verified_bounded _ -> Alcotest.fail "bogus refinement not refuted"
  | Kaos.Not_applicable -> Alcotest.fail "should be applicable"

let test_verify_not_applicable () =
  let m =
    Kaos.empty
    |> Kaos.add (Kaos.goal "G_top" "informal")
    |> Kaos.add ~parent:"G_top" (Kaos.requirement ~agent:"a" "R" "leaf")
  in
  Alcotest.(check bool) "not applicable" true
    (Kaos.verify_refinement m (Id.of_string "G_top") = Kaos.Not_applicable)

let test_verify_all () =
  let verdicts = Kaos.verify_all uav in
  (* Three refined nodes: G_avoid, G_track, G_resolve. *)
  Alcotest.(check int) "three refinements" 3 (List.length verdicts)

let test_to_gsn_well_formed () =
  let s = Kaos.to_gsn uav in
  (* No errors; warnings such as the non-propositional-text heuristic on
     user-supplied requirement descriptions are acceptable. *)
  Alcotest.(check bool) "well-formed" true (Wellformed.is_well_formed s);
  (* Structure reflects the goal model: root goal, strategies for
     refinements, solutions for assignments. *)
  Alcotest.(check (list string))
    "root preserved" [ "G_avoid" ]
    (List.map Id.to_string (Argus_gsn.Structure.roots s))

let test_verification_deterministic () =
  let v1 = Kaos.verify_all ~seed:3 uav in
  let v2 = Kaos.verify_all ~seed:3 uav in
  Alcotest.(check bool) "same verdicts" true (v1 = v2)

(* Property: refuted verdicts always carry genuine counterexamples. *)
let refutations_are_genuine =
  QCheck.Test.make ~name:"refutation witnesses are genuine" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      (* Parent G p, child F p: always refutable. *)
      let m =
        Kaos.empty
        |> Kaos.add (Kaos.goal ~formal:(ltl "G p") "G_top" "top")
        |> Kaos.add ~parent:"G_top" (Kaos.goal ~formal:(ltl "F p") "G_sub" "sub")
        |> Kaos.add ~parent:"G_sub" (Kaos.requirement ~agent:"a" "R" "leaf")
      in
      match Kaos.verify_refinement ~seed m (Id.of_string "G_top") with
      | Kaos.Refuted trace ->
          Ltl.holds trace (ltl "F p") && not (Ltl.holds trace (ltl "G p"))
      | Kaos.Verified_bounded _ | Kaos.Not_applicable -> false)

let () =
  Alcotest.run "argus-kaos"
    [
      ( "structure",
        [
          Alcotest.test_case "accessors" `Quick test_structure_accessors;
          Alcotest.test_case "clean check" `Quick test_check_clean;
          Alcotest.test_case "unrefined goal" `Quick test_check_unrefined;
          Alcotest.test_case "refined requirement" `Quick
            test_check_refined_requirement;
          Alcotest.test_case "informal under formal" `Quick
            test_check_informal_under_formal;
          Alcotest.test_case "unknown parent" `Quick test_unknown_parent;
        ] );
      ( "verification",
        [
          Alcotest.test_case "sound refinement" `Quick
            test_verify_sound_refinement;
          Alcotest.test_case "bogus refinement refuted" `Quick
            test_verify_bogus_refinement;
          Alcotest.test_case "not applicable" `Quick test_verify_not_applicable;
          Alcotest.test_case "verify all" `Quick test_verify_all;
          Alcotest.test_case "deterministic" `Quick
            test_verification_deterministic;
          QCheck_alcotest.to_alcotest refutations_are_genuine;
        ] );
      ( "derivation",
        [ Alcotest.test_case "to_gsn" `Quick test_to_gsn_well_formed ] );
    ]
