open Argus_gsn
module Id = Argus_core.Id
module Evidence = Argus_core.Evidence
module Diagnostic = Argus_core.Diagnostic

let id = Id.of_string
let codes ds = List.map (fun d -> d.Diagnostic.code) ds

(* A small well-formed safety case used across tests. *)
let sample =
  Structure.of_nodes
    ~links:
      [
        (Structure.Supported_by, "G1", "S1");
        (Structure.Supported_by, "S1", "G2");
        (Structure.Supported_by, "S1", "G3");
        (Structure.Supported_by, "G2", "Sn1");
        (Structure.Supported_by, "G3", "Sn2");
        (Structure.In_context_of, "G1", "C1");
        (Structure.In_context_of, "S1", "J1");
      ]
    ~evidence:
      [
        Evidence.make ~id:(id "E1") ~kind:Evidence.Test_results
          "unit test results for the control loop";
        Evidence.make ~id:(id "E2") ~kind:Evidence.Analysis
          "worst-case timing analysis";
      ]
    [
      Node.goal "G1" "The system is acceptably safe in its operating context";
      Node.strategy "S1" "Argument over each identified hazard";
      Node.goal "G2" "Hazard H1 is acceptably managed";
      Node.goal "G3" "Hazard H2 is acceptably managed";
      Node.solution ~evidence:"E1" "Sn1" "Test results for hazard H1";
      Node.solution ~evidence:"E2" "Sn2" "Timing analysis for hazard H2";
      Node.context "C1" "Operating context: motorway driving";
      Node.justification "J1" "Hazard list from the HAZOP study";
    ]

(* --- Structure --- *)

let test_structure_basics () =
  Alcotest.(check int) "size" 8 (Structure.size sample);
  Alcotest.(check int) "links" 7 (List.length (Structure.links sample));
  Alcotest.(check (list string))
    "roots" [ "G1" ]
    (List.map Id.to_string (Structure.roots sample));
  Alcotest.(check (list string))
    "children of S1" [ "G2"; "G3" ]
    (List.map Id.to_string
       (Structure.children Structure.Supported_by (id "S1") sample));
  Alcotest.(check (list string))
    "parents of G2" [ "S1" ]
    (List.map Id.to_string
       (Structure.parents Structure.Supported_by (id "G2") sample));
  Alcotest.(check (list string))
    "context of G1" [ "C1" ]
    (List.map Id.to_string (Structure.context_of (id "G1") sample))

let test_subtree () =
  Alcotest.(check (list string))
    "subtree of S1 preorder" [ "S1"; "G2"; "Sn1"; "G3"; "Sn2" ]
    (List.map Id.to_string (Structure.supported_subtree (id "S1") sample))

let test_remove_node () =
  let s = Structure.remove_node (id "G3") sample in
  Alcotest.(check int) "one fewer node" 7 (Structure.size s);
  Alcotest.(check bool) "links pruned" true
    (not
       (List.exists
          (fun (_, a, b) ->
            Id.to_string a = "G3" || Id.to_string b = "G3")
          (Structure.links s)))

let test_restrict () =
  let keep = Id.Set.of_list [ id "G1"; id "S1"; id "G2" ] in
  let s = Structure.restrict keep sample in
  Alcotest.(check int) "kept nodes" 3 (Structure.size s);
  Alcotest.(check int) "kept links" 2 (List.length (Structure.links s))

let test_cycle_detection () =
  Alcotest.(check bool) "sample acyclic" true (Structure.has_cycle sample = None);
  let cyclic =
    Structure.of_nodes
      ~links:
        [
          (Structure.Supported_by, "A", "B");
          (Structure.Supported_by, "B", "A");
        ]
      [ Node.goal "A" "a is safe"; Node.goal "B" "b is safe" ]
  in
  Alcotest.(check bool) "cycle found" true (Structure.has_cycle cyclic <> None)

let string_contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false else String.sub hay i nn = needle || go (i + 1)
  in
  go 0

let test_dot_output () =
  let dot = Structure.to_dot sample in
  Alcotest.(check bool) "has digraph" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  Alcotest.(check bool) "mentions G1" true (string_contains dot "G1")

(* --- Wellformed --- *)

let test_sample_well_formed () =
  let ds = Wellformed.check sample in
  Alcotest.(check (list string)) "no findings" [] (codes ds)

let test_dangling_link () =
  let s =
    Structure.connect Structure.Supported_by ~src:(id "G1") ~dst:(id "nowhere")
      sample
  in
  Alcotest.(check bool) "dangling" true
    (List.mem "gsn/dangling-link" (codes (Wellformed.check s)))

let test_bad_support_link () =
  let s =
    Structure.of_nodes
      ~links:[ (Structure.Supported_by, "Sn", "G") ]
      [ Node.solution "Sn" "results"; Node.goal "G" "g is safe" ]
  in
  Alcotest.(check bool) "solution cannot support" true
    (List.mem "gsn/bad-support-link" (codes (Wellformed.check s)))

let test_context_under_support () =
  let s =
    Structure.of_nodes
      ~links:[ (Structure.Supported_by, "G", "C") ]
      [ Node.goal "G" "g is safe"; Node.context "C" "ctx" ]
  in
  Alcotest.(check bool) "context is not support" true
    (List.mem "gsn/bad-support-link" (codes (Wellformed.check s)))

let test_solution_in_context_of_away_goal () =
  (* The exact rule the paper quotes from the GSN standard. *)
  let away =
    Node.make ~id:(id "AG1")
      ~node_type:(Node.Away_goal (id "ModuleX"))
      "Away goal from module X"
  in
  let s =
    Structure.of_nodes
      ~links:[ (Structure.In_context_of, "AG1", "Sn") ]
      [ away; Node.solution "Sn" "results" ]
  in
  Alcotest.(check bool) "specific code" true
    (List.mem "gsn/solution-in-context-of-away-goal"
       (codes (Wellformed.check s)))

let test_goal_under_goal_rulesets () =
  let s =
    Structure.of_nodes
      ~links:
        [
          (Structure.Supported_by, "G1", "G2");
          (Structure.Supported_by, "G2", "Sn");
        ]
      ~evidence:
        [ Evidence.make ~id:(id "E") ~kind:Evidence.Review "review record" ]
      [
        Node.goal "G1" "top claim is safe";
        Node.goal "G2" "sub claim is safe";
        Node.solution ~evidence:"E" "Sn" "review results";
      ]
  in
  (* The GSN standard allows goal-to-goal support... *)
  Alcotest.(check bool) "standard allows" true (Wellformed.is_well_formed s);
  (* ...but the Denney-Pai 2013 formalisation forbids it. *)
  Alcotest.(check bool) "Denney-Pai forbids" true
    (List.mem "gsn/dp-goal-under-goal"
       (codes (Wellformed.check ~ruleset:Wellformed.Denney_pai_2013 s)))

let test_cycle_reported () =
  let s =
    Structure.of_nodes
      ~links:
        [
          (Structure.Supported_by, "A", "B");
          (Structure.Supported_by, "B", "A");
        ]
      [ Node.goal "A" "a is safe"; Node.goal "B" "b is safe" ]
  in
  let cs = codes (Wellformed.check s) in
  Alcotest.(check bool) "cycle" true (List.mem "gsn/cycle" cs);
  Alcotest.(check bool) "no root" true (List.mem "gsn/no-root" cs)

let test_unsupported_goal () =
  let s = Structure.of_nodes [ Node.goal "G" "g is safe" ] in
  Alcotest.(check bool) "unsupported" true
    (List.mem "gsn/unsupported-goal" (codes (Wellformed.check s)));
  let ok =
    Structure.of_nodes
      [ { (Node.goal "G" "g is safe") with Node.status = Node.Undeveloped } ]
  in
  Alcotest.(check bool) "undeveloped accepted" true (Wellformed.is_well_formed ok)

let test_undeveloped_strategy () =
  let s =
    Structure.of_nodes
      ~links:[ (Structure.Supported_by, "G", "S") ]
      [
        { (Node.goal "G" "g is safe") with Node.status = Node.Developed };
        Node.strategy "S" "argue over components";
      ]
  in
  Alcotest.(check bool) "leaf strategy" true
    (List.mem "gsn/undeveloped-strategy" (codes (Wellformed.check s)))

let test_non_propositional_goal () =
  let s =
    Structure.of_nodes
      [
        {
          (Node.goal "G" "Formal proof for the quaternion code")
          with
          Node.status = Node.Undeveloped;
        };
      ]
  in
  Alcotest.(check bool) "flagged" true
    (List.mem "gsn/non-propositional-goal" (codes (Wellformed.check s)))

let test_placeholder_text () =
  let s =
    Structure.of_nodes
      [
        {
          (Node.goal "G" "The {system} is acceptably safe")
          with
          Node.status = Node.Developed;
        };
      ]
  in
  Alcotest.(check bool) "flagged" true
    (List.mem "gsn/placeholder-text" (codes (Wellformed.check s)))

let test_unknown_evidence () =
  let s =
    Structure.of_nodes
      ~links:[ (Structure.Supported_by, "G", "Sn") ]
      [
        Node.goal "G" "g is safe";
        Node.solution ~evidence:"Emissing" "Sn" "results";
      ]
  in
  Alcotest.(check bool) "flagged" true
    (List.mem "gsn/unknown-evidence" (codes (Wellformed.check s)))

let test_weak_evidence () =
  (* The paper's wcet example: universal claim on unit-test evidence. *)
  let s =
    Structure.of_nodes
      ~links:[ (Structure.Supported_by, "G", "Sn") ]
      ~evidence:
        [ Evidence.make ~id:(id "E") ~kind:Evidence.Test_results "unit tests" ]
      [
        Node.goal "G" "The task always meets its deadline in all modes";
        Node.solution ~evidence:"E" "Sn" "unit test results";
      ]
  in
  Alcotest.(check bool) "flagged" true
    (List.mem "gsn/weak-evidence" (codes (Wellformed.check s)))

let test_unreachable () =
  let s =
    Structure.add_node
      { (Node.goal "Gx" "orphan is safe") with Node.status = Node.Undeveloped }
      sample
  in
  let cs = codes (Wellformed.check s) in
  (* Gx is a second root (not unreachable); attach below a solution? No —
     instead an orphan context node is unreachable. *)
  Alcotest.(check bool) "second root warned" true
    (List.mem "gsn/multiple-roots" cs);
  let s2 = Structure.add_node (Node.context "Cx" "orphan context") sample in
  Alcotest.(check bool) "orphan context unreachable" true
    (List.mem "gsn/unreachable" (codes (Wellformed.check s2)))

(* --- Random well-formed cases, and the hicase invariant --- *)

let gen_wf_structure =
  let open QCheck.Gen in
  (* A random alternating goal/strategy tree with solution leaves. *)
  let* seed = int_bound 10_000 in
  let counter = ref 0 in
  let fresh prefix =
    incr counter;
    Printf.sprintf "%s%d" prefix !counter
  in
  let rec build_goal depth rng =
    let gid = fresh "G" in
    let node = Node.goal gid (Printf.sprintf "Claim %s is acceptably safe" gid) in
    if depth <= 0 then
      let sid = fresh "Sn" in
      let eid = "E" ^ sid in
      ( [ node; Node.solution ~evidence:eid sid "supporting results" ],
        [ (Structure.Supported_by, gid, sid) ],
        [ Evidence.make ~id:(id eid) ~kind:Evidence.Analysis "analysis" ],
        gid )
    else begin
      let use_strategy = Random.State.bool rng in
      if use_strategy then begin
        let sid = fresh "S" in
        let strat = Node.strategy sid "argument by decomposition" in
        let n_children = 1 + Random.State.int rng 2 in
        let parts =
          List.init n_children (fun _ -> build_goal (depth - 1) rng)
        in
        let nodes = node :: strat :: List.concat_map (fun (n, _, _, _) -> n) parts in
        let links =
          ((Structure.Supported_by, gid, sid)
          :: List.map (fun (_, _, _, cid) -> (Structure.Supported_by, sid, cid)) parts)
          @ List.concat_map (fun (_, l, _, _) -> l) parts
        in
        let evs = List.concat_map (fun (_, _, e, _) -> e) parts in
        (nodes, links, evs, gid)
      end
      else begin
        let sub_nodes, sub_links, sub_evs, sub_gid = build_goal (depth - 1) rng in
        ( node :: sub_nodes,
          (Structure.Supported_by, gid, sub_gid) :: sub_links,
          sub_evs,
          gid )
      end
    end
  in
  let rng = Random.State.make [| seed |] in
  let depth = 1 + Random.State.int rng 3 in
  let nodes, links, evs, _root = build_goal depth rng in
  return (Structure.of_nodes ~links ~evidence:evs nodes)

let arb_wf =
  QCheck.make
    ~print:(fun s -> Format.asprintf "%a" Structure.pp_outline s)
    gen_wf_structure

let generated_cases_are_well_formed =
  QCheck.Test.make ~name:"generated cases are well-formed" ~count:100 arb_wf
    Wellformed.is_well_formed

let hicase_views_stay_well_formed =
  QCheck.Test.make ~name:"every fold state yields a well-formed view"
    ~count:100
    (QCheck.pair arb_wf (QCheck.list_of_size (QCheck.Gen.int_bound 5) QCheck.(int_bound 50)))
    (fun (s, picks) ->
      let all = Structure.nodes s in
      let n = List.length all in
      let hc =
        List.fold_left
          (fun hc k ->
            let node = List.nth all (k mod n) in
            Hicase.collapse node.Node.id hc)
          (Hicase.of_structure s) picks
      in
      Wellformed.is_well_formed (Hicase.visible hc))

let hicase_collapse_expand_roundtrip =
  QCheck.Test.make ~name:"expand undoes collapse" ~count:100 arb_wf (fun s ->
      let all = Structure.nodes s in
      let target = (List.hd all).Node.id in
      let hc = Hicase.of_structure s in
      let hc' = Hicase.expand target (Hicase.collapse target hc) in
      Structure.equal (Hicase.visible hc') (Hicase.visible hc))

let hicase_visible_smaller =
  QCheck.Test.make ~name:"collapsing never grows the view" ~count:100 arb_wf
    (fun s ->
      let hc = Hicase.of_structure s in
      let full = Hicase.visible_count hc in
      List.for_all
        (fun node ->
          Hicase.visible_count (Hicase.collapse node.Node.id hc) <= full)
        (Structure.nodes s))

let test_hicase_depth_overview () =
  let hc = Hicase.collapse_to_depth 0 (Hicase.of_structure sample) in
  Alcotest.(check int) "only root and its context visible" 2
    (Hicase.visible_count hc);
  let v = Hicase.visible hc in
  Alcotest.(check bool) "root marked undeveloped" true
    ((Structure.find_exn (id "G1") v).Node.status = Node.Undeveloped);
  Alcotest.(check bool) "view well-formed" true (Wellformed.is_well_formed v)

let test_hicase_leaf_collapse_noop () =
  let hc = Hicase.of_structure sample in
  let hc' = Hicase.collapse (id "Sn1") hc in
  Alcotest.(check int) "leaf collapse is a no-op" (Hicase.visible_count hc)
    (Hicase.visible_count hc')

(* --- Metadata --- *)

let hazard_ontology =
  Metadata.ontology
    ~enums:
      [
        ("severity", [ "catastrophic"; "hazardous"; "major"; "minor" ]);
        ("likelihood", [ "frequent"; "probable"; "remote"; "extremely-improbable" ]);
        ("element", [ "aileron"; "elevator"; "flaps" ]);
      ]
    [
      Metadata.attr "hazard" [ Metadata.Pstr; Metadata.Penum "severity"; Metadata.Penum "likelihood" ];
      Metadata.attr "component" [ Metadata.Penum "element" ];
      Metadata.attr "sil" [ Metadata.Pnat ];
    ]

let test_metadata_ok () =
  let anns =
    [
      { Metadata.attr = "hazard"; args = [ Metadata.Str "H1"; Metadata.Enum "catastrophic"; Metadata.Enum "remote" ] };
      { Metadata.attr = "sil"; args = [ Metadata.Nat 3 ] };
    ]
  in
  Alcotest.(check (list string)) "clean" []
    (codes (Metadata.validate hazard_ontology anns))

let test_metadata_errors () =
  let cases =
    [
      ({ Metadata.attr = "unknown"; args = [] }, "metadata/unknown-attribute");
      ( { Metadata.attr = "sil"; args = [] }, "metadata/arity");
      ( { Metadata.attr = "sil"; args = [ Metadata.Int (-1) ] },
        "metadata/negative-nat" );
      ( { Metadata.attr = "component"; args = [ Metadata.Enum "rudder" ] },
        "metadata/not-a-member" );
      ( { Metadata.attr = "component"; args = [ Metadata.Str "aileron" ] },
        "metadata/type" );
    ]
  in
  List.iter
    (fun (ann, expected) ->
      let cs = codes (Metadata.validate hazard_ontology [ ann ]) in
      if not (List.mem expected cs) then
        Alcotest.failf "expected %s, got [%s]" expected (String.concat "; " cs))
    cases

let test_metadata_parse () =
  (match Metadata.annotation_of_string "hazard \"H1\" catastrophic remote" with
  | Ok a ->
      Alcotest.(check string) "attr" "hazard" a.Metadata.attr;
      Alcotest.(check int) "args" 3 (List.length a.Metadata.args)
  | Error e -> Alcotest.fail e);
  (match Metadata.annotation_of_string "sil 4" with
  | Ok { Metadata.args = [ Metadata.Nat 4 ]; _ } -> ()
  | _ -> Alcotest.fail "nat parse");
  match Metadata.annotation_of_string "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty should fail"

(* --- Query --- *)

let annotated_sample =
  let annotate nid anns s =
    Structure.add_node
      { (Structure.find_exn (id nid) s) with Node.annotations = anns }
      s
  in
  sample
  |> annotate "G2"
       [
         {
           Metadata.attr = "hazard";
           args =
             [ Metadata.Str "H1"; Metadata.Enum "catastrophic"; Metadata.Enum "remote" ];
         };
         { Metadata.attr = "sil"; args = [ Metadata.Nat 4 ] };
       ]
  |> annotate "G3"
       [
         {
           Metadata.attr = "hazard";
           args = [ Metadata.Str "H2"; Metadata.Enum "minor"; Metadata.Enum "probable" ];
         };
         { Metadata.attr = "sil"; args = [ Metadata.Nat 1 ] };
       ]

let test_query_select () =
  let q = Query.Type_is Node.Goal in
  Alcotest.(check int) "three goals" 3
    (List.length (Query.select q annotated_sample));
  let q = Query.Has_attr "hazard" in
  Alcotest.(check int) "two hazards" 2
    (List.length (Query.select q annotated_sample));
  let q = Query.Attr_ge ("sil", 3) in
  Alcotest.(check (list string))
    "high sil" [ "G2" ]
    (List.map
       (fun n -> Id.to_string n.Node.id)
       (Query.select q annotated_sample))

let test_query_parser () =
  (match Query.of_string "type = goal & text ~ \"hazard\"" with
  | Ok q ->
      Alcotest.(check int) "two goals about hazards" 2
        (List.length (Query.select q annotated_sample))
  | Error e -> Alcotest.fail e);
  (match Query.of_string "sil >= 3 | sil <= 0" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Query.of_string "!(has hazard)" with
  | Ok q ->
      Alcotest.(check int) "six unannotated" 6
        (List.length (Query.select q annotated_sample))
  | Error e -> Alcotest.fail e);
  List.iter
    (fun s ->
      match Query.of_string s with
      | Ok _ -> Alcotest.failf "should not parse: %S" s
      | Error _ -> ())
    [ ""; "type ="; "sil >="; "has"; "a = b extra junk =" ]

let test_trace_view () =
  (* The Denney-Naylor-Pai example: view of traceability to hazards
     that are catastrophic and remote. *)
  let catastrophic_remote =
    Query.And (Query.Has_attr "hazard", Query.Attr_ge ("sil", 4))
  in
  let view = Query.trace_view catastrophic_remote annotated_sample in
  (* G2 matches; ancestors S1, G1 kept; context C1 (of G1) and J1 (of S1)
     kept; G3/Sn1/Sn2 dropped...  Sn1 is a child of G2, not an ancestor,
     so it is dropped too. *)
  let kept = List.map (fun n -> Id.to_string n.Node.id) (Structure.nodes view) in
  List.iter
    (fun must -> Alcotest.(check bool) (must ^ " kept") true (List.mem must kept))
    [ "G1"; "S1"; "G2"; "C1"; "J1" ];
  List.iter
    (fun mustnt ->
      Alcotest.(check bool) (mustnt ^ " dropped") false (List.mem mustnt kept))
    [ "G3"; "Sn1"; "Sn2" ]

let query_roundtrip =
  QCheck.Test.make ~name:"query pp/of_string round-trip on select outputs"
    ~count:100
    (QCheck.make
       QCheck.Gen.(
         let base =
           oneofl
             [
               Query.Any;
               Query.Type_is Node.Goal;
               Query.Has_attr "hazard";
               Query.Attr_is ("sil", Metadata.Nat 3);
               Query.Attr_ge ("sil", 2);
               Query.Text_contains "hazard";
             ]
         in
         let* a = base in
         let* b = base in
         oneofl
           [ a; Query.Not a; Query.And (a, b); Query.Or (a, b) ]))
    (fun q ->
      match Query.of_string (Format.asprintf "%a" Query.pp q) with
      | Ok q' ->
          List.for_all
            (fun n -> Query.matches q n = Query.matches q' n)
            (Structure.nodes annotated_sample)
      | Error _ -> false)

(* --- Modular --- *)

(* A two-module collection: the system module cites the powertrain
   module's root goal as an away goal. *)
let powertrain =
  Structure.of_nodes
    ~links:[ (Structure.Supported_by, "PG1", "PSn1") ]
    ~evidence:
      [ Evidence.make ~id:(id "PE1") ~kind:Evidence.Analysis "analysis" ]
    [
      Node.goal "PG1" "The powertrain is acceptably safe";
      Node.solution ~evidence:"PE1" "PSn1" "Powertrain analysis";
    ]

let system_module =
  Structure.of_nodes
    ~links:
      [
        (Structure.Supported_by, "G1", "S1");
        (Structure.Supported_by, "S1", "AG_PG1");
        (Structure.Supported_by, "S1", "G2");
        (Structure.Supported_by, "G2", "Sn1");
      ]
    ~evidence:[ Evidence.make ~id:(id "E1") ~kind:Evidence.Review "review" ]
    [
      Node.goal "G1" "The vehicle is acceptably safe";
      Node.strategy "S1" "Argue over subsystems";
      Node.make ~id:(id "AG_PG1") ~node_type:(Node.Away_goal (id "Powertrain"))
        "The powertrain is acceptably safe";
      Node.goal "G2" "The body controller is acceptably safe";
      Node.solution ~evidence:"E1" "Sn1" "Review results";
    ]

let good_collection =
  Modular.empty
  |> Modular.add_module ~name:(id "Powertrain") ~public:[ id "PG1" ] powertrain
  |> Modular.add_module ~name:(id "Vehicle") system_module

let test_modular_away_goal_id_mismatch () =
  (* AG_PG1's id must match a goal in Powertrain; it does not, so the
     collection reports the target error. *)
  Alcotest.(check bool) "mismatch flagged" true
    (List.mem "modular/away-goal-target" (codes (Modular.check good_collection)))

let matched_collection =
  (* Rename the away goal to carry the cited goal's id, the standard's
     convention. *)
  let sys =
    system_module
    |> Structure.remove_node (id "AG_PG1")
    |> Structure.add_node
         (Node.make ~id:(id "PG1")
            ~node_type:(Node.Away_goal (id "Powertrain"))
            "The powertrain is acceptably safe")
    |> Structure.connect Structure.Supported_by ~src:(id "S1") ~dst:(id "PG1")
  in
  Modular.empty
  |> Modular.add_module ~name:(id "Powertrain") ~public:[ id "PG1" ] powertrain
  |> Modular.add_module ~name:(id "Vehicle") sys

let test_modular_clean () =
  Alcotest.(check (list string)) "clean" []
    (codes (Modular.check matched_collection))

let test_modular_unknown_module () =
  let collection =
    Modular.empty |> Modular.add_module ~name:(id "Vehicle") system_module
  in
  Alcotest.(check bool) "unknown module" true
    (List.mem "modular/unknown-module" (codes (Modular.check collection)))

let test_modular_private_goal () =
  let collection =
    Modular.empty
    |> Modular.add_module ~name:(id "Powertrain") ~public:[] powertrain
    |> Modular.add_module ~name:(id "Vehicle")
         (system_module
         |> Structure.remove_node (id "AG_PG1")
         |> Structure.add_node
              (Node.make ~id:(id "PG1")
                 ~node_type:(Node.Away_goal (id "Powertrain"))
                 "The powertrain is acceptably safe")
         |> Structure.connect Structure.Supported_by ~src:(id "S1")
              ~dst:(id "PG1"))
  in
  Alcotest.(check bool) "private goal warned" true
    (List.mem "modular/private-goal" (codes (Modular.check collection)))

let test_modular_dependency_cycle () =
  let m_a =
    Structure.of_nodes
      ~links:[ (Structure.Supported_by, "GA", "GB") ]
      [
        Node.goal "GA" "A is safe";
        Node.make ~id:(id "GB") ~node_type:(Node.Away_goal (id "B"))
          "B is safe";
      ]
  in
  let m_b =
    Structure.of_nodes
      ~links:[ (Structure.Supported_by, "GB", "GA") ]
      [
        Node.goal "GB" "B is safe";
        Node.make ~id:(id "GA") ~node_type:(Node.Away_goal (id "A"))
          "A is safe";
      ]
  in
  let collection =
    Modular.empty
    |> Modular.add_module ~name:(id "A") m_a
    |> Modular.add_module ~name:(id "B") m_b
  in
  Alcotest.(check bool) "cycle flagged" true
    (List.mem "modular/dependency-cycle" (codes (Modular.check collection)))

let test_modular_dependencies () =
  Alcotest.(check (list string))
    "vehicle depends on powertrain" [ "Powertrain" ]
    (List.map Id.to_string
       (Modular.dependencies (id "Vehicle") matched_collection));
  Alcotest.(check (list string))
    "powertrain is a leaf" []
    (List.map Id.to_string
       (Modular.dependencies (id "Powertrain") matched_collection))

(* --- Interchange --- *)

let test_interchange_roundtrip_sample () =
  let text = Interchange.export annotated_sample in
  match Interchange.import text with
  | Ok s ->
      Alcotest.(check bool) "round-trip" true
        (Structure.equal s annotated_sample)
  | Error ds ->
      Alcotest.failf "import failed: %s"
        (Format.asprintf "%a" Argus_core.Diagnostic.pp_report ds)

let test_interchange_with_formal_and_modular () =
  let s =
    Structure.of_nodes
      ~links:[ (Structure.Supported_by, "G1", "AG1") ]
      [
        {
          (Node.goal "G1" "top claim is safe") with
          Node.formal = Some (Argus_logic.Prop.of_string_exn "a -> b");
        };
        Node.make ~id:(id "AG1")
          ~node_type:(Node.Away_goal (id "M"))
          "away claim";
      ]
  in
  match Interchange.import (Interchange.export s) with
  | Ok s' -> Alcotest.(check bool) "round-trip" true (Structure.equal s s')
  | Error ds ->
      Alcotest.failf "import failed: %s"
        (Format.asprintf "%a" Argus_core.Diagnostic.pp_report ds)

let test_interchange_errors () =
  List.iter
    (fun (text, code) ->
      match Interchange.import text with
      | Ok _ -> Alcotest.failf "should fail: %s" text
      | Error ds ->
          if not (List.exists (fun d -> d.Argus_core.Diagnostic.code = code) ds)
          then
            Alcotest.failf "expected %s for %s, got %s" code text
              (String.concat ";"
                 (List.map (fun d -> d.Argus_core.Diagnostic.code) ds)))
    [
      ("not json at all", "interchange/shape");
      ({|{"nodes": [{"id": "1bad", "type": "goal", "text": "t"}]}|},
       "interchange/bad-id");
      ({|{"nodes": [{"id": "G", "type": "widget", "text": "t"}]}|},
       "interchange/bad-type");
      ({|{"nodes": [{"id": "G", "type": "goal", "text": "t", "status": "odd"}]}|},
       "interchange/bad-status");
      ({|{"nodes": [{"id": "G", "type": "goal", "text": "t", "formal": "a &"}]}|},
       "interchange/bad-formula");
      ({|{"links": [{"kind": "sideways", "from": "a", "to": "b"}]}|},
       "interchange/bad-kind");
      ({|{"nodes": [{"type": "goal", "text": "t"}]}|}, "interchange/shape");
    ]

let interchange_roundtrip_property =
  QCheck.Test.make ~name:"export/import round-trip" ~count:100 arb_wf (fun s ->
      match Interchange.import (Interchange.export s) with
      | Ok s' -> Structure.equal s s'
      | Error _ -> false)

(* --- Metrics --- *)

let test_metrics_sample () =
  let m = Metrics.measure sample in
  Alcotest.(check int) "nodes" 8 m.Metrics.nodes;
  Alcotest.(check int) "goals" 3 m.Metrics.goals;
  Alcotest.(check int) "strategies" 1 m.Metrics.strategies;
  Alcotest.(check int) "solutions" 2 m.Metrics.solutions;
  Alcotest.(check int) "contextual" 2 m.Metrics.contextual;
  Alcotest.(check int) "links" 7 m.Metrics.links;
  (* G1 -> S1 -> G2 -> Sn1 is the longest chain: 4 nodes. *)
  Alcotest.(check int) "depth" 4 m.Metrics.depth;
  Alcotest.(check int) "fanout" 2 m.Metrics.max_fanout;
  Alcotest.(check int) "evidence" 2 m.Metrics.evidence_items;
  Alcotest.(check (float 1e-9)) "no formalisation" 0.0
    m.Metrics.formalisation_ratio

let test_metrics_empty () =
  let m = Metrics.measure Structure.empty in
  Alcotest.(check int) "nodes" 0 m.Metrics.nodes;
  Alcotest.(check int) "depth" 0 m.Metrics.depth;
  Alcotest.(check (float 1e-9)) "ease" 100.0 m.Metrics.reading_ease

let metrics_total_on_chaos =
  QCheck.Test.make ~name:"metrics counts partition the nodes" ~count:100
    arb_wf (fun s ->
      let m = Metrics.measure s in
      m.Metrics.goals + m.Metrics.strategies + m.Metrics.solutions
      + m.Metrics.contextual + m.Metrics.modular
      = m.Metrics.nodes)

let () =
  Alcotest.run "argus-gsn"
    [
      ( "structure",
        [
          Alcotest.test_case "basics" `Quick test_structure_basics;
          Alcotest.test_case "subtree" `Quick test_subtree;
          Alcotest.test_case "remove node" `Quick test_remove_node;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
          Alcotest.test_case "dot output" `Quick test_dot_output;
        ] );
      ( "wellformed",
        [
          Alcotest.test_case "sample is clean" `Quick test_sample_well_formed;
          Alcotest.test_case "dangling link" `Quick test_dangling_link;
          Alcotest.test_case "bad support link" `Quick test_bad_support_link;
          Alcotest.test_case "context under support" `Quick
            test_context_under_support;
          Alcotest.test_case "solution in context of away goal" `Quick
            test_solution_in_context_of_away_goal;
          Alcotest.test_case "goal under goal rulesets" `Quick
            test_goal_under_goal_rulesets;
          Alcotest.test_case "cycle reported" `Quick test_cycle_reported;
          Alcotest.test_case "unsupported goal" `Quick test_unsupported_goal;
          Alcotest.test_case "undeveloped strategy" `Quick
            test_undeveloped_strategy;
          Alcotest.test_case "non-propositional goal" `Quick
            test_non_propositional_goal;
          Alcotest.test_case "placeholder text" `Quick test_placeholder_text;
          Alcotest.test_case "unknown evidence" `Quick test_unknown_evidence;
          Alcotest.test_case "weak evidence" `Quick test_weak_evidence;
          Alcotest.test_case "unreachable" `Quick test_unreachable;
          QCheck_alcotest.to_alcotest generated_cases_are_well_formed;
        ] );
      ( "hicase",
        [
          Alcotest.test_case "depth overview" `Quick test_hicase_depth_overview;
          Alcotest.test_case "leaf collapse no-op" `Quick
            test_hicase_leaf_collapse_noop;
          QCheck_alcotest.to_alcotest hicase_views_stay_well_formed;
          QCheck_alcotest.to_alcotest hicase_collapse_expand_roundtrip;
          QCheck_alcotest.to_alcotest hicase_visible_smaller;
        ] );
      ( "metadata",
        [
          Alcotest.test_case "valid annotations" `Quick test_metadata_ok;
          Alcotest.test_case "invalid annotations" `Quick test_metadata_errors;
          Alcotest.test_case "annotation parser" `Quick test_metadata_parse;
        ] );
      ( "query",
        [
          Alcotest.test_case "select" `Quick test_query_select;
          Alcotest.test_case "parser" `Quick test_query_parser;
          Alcotest.test_case "trace view" `Quick test_trace_view;
          QCheck_alcotest.to_alcotest query_roundtrip;
        ] );
      ( "modular",
        [
          Alcotest.test_case "away goal id mismatch" `Quick
            test_modular_away_goal_id_mismatch;
          Alcotest.test_case "matched collection clean" `Quick
            test_modular_clean;
          Alcotest.test_case "unknown module" `Quick test_modular_unknown_module;
          Alcotest.test_case "private goal" `Quick test_modular_private_goal;
          Alcotest.test_case "dependency cycle" `Quick
            test_modular_dependency_cycle;
          Alcotest.test_case "dependencies" `Quick test_modular_dependencies;
        ] );
      ( "interchange",
        [
          Alcotest.test_case "annotated sample round-trip" `Quick
            test_interchange_roundtrip_sample;
          Alcotest.test_case "formal and modular nodes" `Quick
            test_interchange_with_formal_and_modular;
          Alcotest.test_case "errors" `Quick test_interchange_errors;
          QCheck_alcotest.to_alcotest interchange_roundtrip_property;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "sample" `Quick test_metrics_sample;
          Alcotest.test_case "empty" `Quick test_metrics_empty;
          QCheck_alcotest.to_alcotest metrics_total_on_chaos;
        ] );
    ]
