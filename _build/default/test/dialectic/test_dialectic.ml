open Argus_dialectic
module Id = Argus_core.Id
module Diagnostic = Argus_core.Diagnostic

let set l = Id.Set.of_list (List.map Id.of_string l)

(* --- Classic frameworks --- *)

(* a <-> b mutual attack; c attacked by both. *)
let mutual =
  Af.of_lists ~arguments:[ "a"; "b"; "c" ]
    ~attacks:[ ("a", "b"); ("b", "a"); ("a", "c"); ("b", "c") ]

(* A chain a -> b -> c: a undefeated, b out, c reinstated. *)
let chain =
  Af.of_lists ~arguments:[ "a"; "b"; "c" ] ~attacks:[ ("a", "b"); ("b", "c") ]

let test_grounded_chain () =
  let g = Af.grounded chain in
  Alcotest.(check bool) "a in" true (Id.Set.mem (Id.of_string "a") g);
  Alcotest.(check bool) "b out" false (Id.Set.mem (Id.of_string "b") g);
  Alcotest.(check bool) "c reinstated" true (Id.Set.mem (Id.of_string "c") g);
  Alcotest.(check bool) "a accepted" true (Af.status chain (Id.of_string "a") = Af.Accepted);
  Alcotest.(check bool) "b rejected" true (Af.status chain (Id.of_string "b") = Af.Rejected)

let test_grounded_mutual_empty () =
  (* Mutual attack: grounded extension is empty; everything undecided. *)
  Alcotest.(check bool) "empty" true (Id.Set.is_empty (Af.grounded mutual));
  Alcotest.(check bool) "a undecided" true
    (Af.status mutual (Id.of_string "a") = Af.Undecided)

let test_preferred_mutual () =
  let prefs = Af.preferred mutual in
  (* Two preferred extensions: {a} and {b} (c is attacked by both). *)
  Alcotest.(check int) "two preferred" 2 (List.length prefs);
  Alcotest.(check bool) "contains {a}" true
    (List.exists (Id.Set.equal (set [ "a" ])) prefs);
  Alcotest.(check bool) "contains {b}" true
    (List.exists (Id.Set.equal (set [ "b" ])) prefs)

let test_stable () =
  let stables = Af.stable mutual in
  Alcotest.(check int) "two stable" 2 (List.length stables);
  (* Odd cycle has no stable extension. *)
  let odd =
    Af.of_lists ~arguments:[ "x"; "y"; "z" ]
      ~attacks:[ ("x", "y"); ("y", "z"); ("z", "x") ]
  in
  Alcotest.(check int) "odd cycle: none" 0 (List.length (Af.stable odd))

let test_self_attack () =
  let self = Af.of_lists ~arguments:[ "a" ] ~attacks:[ ("a", "a") ] in
  Alcotest.(check bool) "not in grounded" true
    (Id.Set.is_empty (Af.grounded self));
  Alcotest.(check bool) "undecided" true
    (Af.status self (Id.of_string "a") = Af.Undecided)

(* --- Properties --- *)

let gen_af =
  QCheck.Gen.(
    let* n = int_range 1 7 in
    let args = List.init n (fun i -> Printf.sprintf "a%d" i) in
    let* attacks =
      list_size (int_bound (n * 2))
        (map2
           (fun i j -> (Printf.sprintf "a%d" (i mod n), Printf.sprintf "a%d" (j mod n)))
           (int_bound 20) (int_bound 20))
    in
    return (Af.of_lists ~arguments:args ~attacks))

let arb_af = QCheck.make gen_af

let grounded_is_admissible =
  QCheck.Test.make ~name:"grounded extension is admissible" ~count:300 arb_af
    (fun af -> Af.admissible af (Af.grounded af))

let grounded_subset_of_all_preferred =
  QCheck.Test.make ~name:"grounded is contained in every preferred" ~count:200
    arb_af (fun af ->
      let g = Af.grounded af in
      List.for_all (fun p -> Id.Set.subset g p) (Af.preferred af))

let stable_are_preferred =
  QCheck.Test.make ~name:"every stable extension is preferred" ~count:200
    arb_af (fun af ->
      let prefs = Af.preferred af in
      List.for_all
        (fun s -> List.exists (Id.Set.equal s) prefs)
        (Af.stable af))

let preferred_nonempty =
  QCheck.Test.make ~name:"at least one preferred extension" ~count:200 arb_af
    (fun af -> Af.preferred af <> [])

(* --- Dialogues --- *)

(* The organ-transplant deliberation of the surveyed paper's domain. *)
let transplant =
  Dialogue.start ~id:"P" ~by:"transplant-unit"
    "Transplant the donor organ into recipient R"
  |> Dialogue.move ~id:"O1" ~by:"nephrologist"
       ~kind:(Dialogue.Objection (Id.of_string "P"))
       "Donor history suggests hepatitis risk"
  |> Dialogue.move ~id:"R1" ~by:"virologist"
       ~kind:(Dialogue.Rebuttal (Id.of_string "O1"))
       "Serology rules out active infection"

let test_dialogue_decision_flow () =
  (* Proposal alone: accepted. *)
  let p = Dialogue.start ~id:"P" ~by:"unit" "act" in
  Alcotest.(check bool) "proceed" true (Dialogue.decision p = Dialogue.Proceed);
  (* With an unanswered objection: rejected. *)
  let objected =
    Dialogue.move ~id:"O1" ~by:"other"
      ~kind:(Dialogue.Objection (Id.of_string "P"))
      "unsafe" p
  in
  Alcotest.(check bool) "do not proceed" true
    (Dialogue.decision objected = Dialogue.Do_not_proceed);
  (* Rebutted objection: reinstated (non-monotonic!). *)
  Alcotest.(check bool) "reinstated" true
    (Dialogue.decision transplant = Dialogue.Proceed)

let test_dialogue_check_clean () =
  Alcotest.(check (list string)) "clean" []
    (List.map (fun d -> d.Diagnostic.code) (Dialogue.check transplant))

let test_dialogue_check_errors () =
  let bad =
    Dialogue.start ~id:"P" ~by:"unit" "act"
    |> Dialogue.move ~id:"O1" ~by:"x"
         ~kind:(Dialogue.Objection (Id.of_string "Ghost"))
         "targets nothing"
    |> Dialogue.move ~id:"P" ~by:"unit" ~kind:Dialogue.Propose "again"
  in
  let codes = List.map (fun d -> d.Diagnostic.code) (Dialogue.check bad) in
  Alcotest.(check bool) "dangling" true
    (List.mem "dialogue/dangling-target" codes);
  Alcotest.(check bool) "second proposal" true
    (List.mem "dialogue/second-proposal" codes);
  Alcotest.(check bool) "duplicate id" true
    (List.mem "dialogue/duplicate-move" codes)

let test_dialogue_self_attack_warned () =
  let d =
    Dialogue.start ~id:"P" ~by:"unit" "act"
    |> Dialogue.move ~id:"O1" ~by:"unit"
         ~kind:(Dialogue.Objection (Id.of_string "P"))
         "second thoughts"
  in
  Alcotest.(check bool) "warned" true
    (List.mem "dialogue/self-attack"
       (List.map (fun d -> d.Diagnostic.code) (Dialogue.check d)))

(* Non-monotonicity, as a property: appending an objection to the move
   that currently carries the decision can only keep or flip it, and a
   rebuttal of that objection restores it. *)
let objection_then_rebuttal_restores =
  QCheck.Test.make ~name:"objection flips, rebuttal restores" ~count:100
    QCheck.(int_range 0 1000)
    (fun k ->
      let d = Dialogue.start ~id:"P" ~by:"unit" (Printf.sprintf "act %d" k) in
      let with_obj =
        Dialogue.move ~id:"O" ~by:"critic"
          ~kind:(Dialogue.Objection (Id.of_string "P"))
          "unsafe" d
      in
      let with_rebut =
        Dialogue.move ~id:"R" ~by:"expert"
          ~kind:(Dialogue.Rebuttal (Id.of_string "O"))
          "mitigated" with_obj
      in
      Dialogue.decision d = Dialogue.Proceed
      && Dialogue.decision with_obj = Dialogue.Do_not_proceed
      && Dialogue.decision with_rebut = Dialogue.Proceed)

let () =
  Alcotest.run "argus-dialectic"
    [
      ( "af",
        [
          Alcotest.test_case "grounded chain" `Quick test_grounded_chain;
          Alcotest.test_case "grounded mutual" `Quick test_grounded_mutual_empty;
          Alcotest.test_case "preferred" `Quick test_preferred_mutual;
          Alcotest.test_case "stable" `Quick test_stable;
          Alcotest.test_case "self attack" `Quick test_self_attack;
          QCheck_alcotest.to_alcotest grounded_is_admissible;
          QCheck_alcotest.to_alcotest grounded_subset_of_all_preferred;
          QCheck_alcotest.to_alcotest stable_are_preferred;
          QCheck_alcotest.to_alcotest preferred_nonempty;
        ] );
      ( "dialogue",
        [
          Alcotest.test_case "decision flow" `Quick test_dialogue_decision_flow;
          Alcotest.test_case "clean check" `Quick test_dialogue_check_clean;
          Alcotest.test_case "errors" `Quick test_dialogue_check_errors;
          Alcotest.test_case "self attack warned" `Quick
            test_dialogue_self_attack_warned;
          QCheck_alcotest.to_alcotest objection_then_rebuttal_restores;
        ] );
    ]
