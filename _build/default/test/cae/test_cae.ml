open Argus_cae
module Id = Argus_core.Id
module Evidence = Argus_core.Evidence
module Diagnostic = Argus_core.Diagnostic
module Structure = Argus_gsn.Structure
module Node = Argus_gsn.Node
module Wellformed = Argus_gsn.Wellformed

let codes ds = List.map (fun d -> d.Diagnostic.code) ds

(* A small well-formed CAE case. *)
let sample =
  Cae.of_nodes
    ~links:
      [
        ("C1", "A1");
        ("A1", "E1");
        ("A1", "C2");
        ("C2", "A2");
        ("A2", "E2");
      ]
    [
      Cae.claim "C1" "The system is acceptably secure";
      Cae.argument "A1" "Argument over the attack surface";
      Cae.evidence_ref "E1" "Penetration test report";
      Cae.claim "C2" "The update channel is authenticated";
      Cae.argument "A2" "Cryptographic review";
      Cae.evidence_ref "E2" "Review minutes";
    ]

let test_sample_well_formed () =
  Alcotest.(check (list string)) "clean" [] (codes (Cae.check sample))

let test_claim_without_argument () =
  let c = Cae.of_nodes [ Cae.claim "C1" "unsupported claim" ] in
  Alcotest.(check bool) "flagged" true
    (List.mem "cae/claim-without-argument" (codes (Cae.check c)))

let test_premise_claims_allowed () =
  let c = Cae.of_nodes [ Cae.claim ~premise:true "C1" "stipulated" ] in
  Alcotest.(check bool) "premises need no argument" true
    (not (List.mem "cae/claim-without-argument" (codes (Cae.check c))))

let test_empty_argument () =
  let c =
    Cae.of_nodes
      ~links:[ ("C1", "A1") ]
      [ Cae.claim "C1" "claim"; Cae.argument "A1" "empty inference" ]
  in
  Alcotest.(check bool) "flagged" true
    (List.mem "cae/empty-argument" (codes (Cae.check c)))

let test_evidence_not_leaf () =
  let c =
    Cae.of_nodes
      ~links:[ ("C1", "A1"); ("A1", "E1"); ("E1", "C2") ]
      [
        Cae.claim "C1" "claim";
        Cae.argument "A1" "argument";
        Cae.evidence_ref "E1" "evidence";
        Cae.claim ~premise:true "C2" "sub";
      ]
  in
  Alcotest.(check bool) "flagged" true
    (List.mem "cae/evidence-not-leaf" (codes (Cae.check c)))

let test_direct_evidence_under_claim () =
  let c =
    Cae.of_nodes
      ~links:[ ("C1", "E1") ]
      [ Cae.claim "C1" "claim"; Cae.evidence_ref "E1" "evidence" ]
  in
  Alcotest.(check bool) "flagged" true
    (List.mem "cae/bad-support" (codes (Cae.check c)))

let test_cycle () =
  let c =
    Cae.of_nodes
      ~links:[ ("C1", "A1"); ("A1", "C2"); ("C2", "A2"); ("A2", "C1") ]
      [
        Cae.claim "C1" "claim one";
        Cae.argument "A1" "arg one";
        Cae.claim "C2" "claim two";
        Cae.argument "A2" "arg two";
      ]
  in
  let cs = codes (Cae.check c) in
  Alcotest.(check bool) "cycle" true (List.mem "cae/cycle" cs);
  Alcotest.(check bool) "no root" true (List.mem "cae/no-root" cs)

let test_dangling () =
  let c =
    Cae.of_nodes ~links:[ ("C1", "Ghost") ] [ Cae.claim "C1" "claim" ]
  in
  Alcotest.(check bool) "flagged" true
    (List.mem "cae/dangling-link" (codes (Cae.check c)))

let test_multiple_arguments_warned () =
  let c =
    Cae.of_nodes
      ~links:[ ("C1", "A1"); ("C1", "A2"); ("A1", "E1"); ("A2", "E1") ]
      [
        Cae.claim "C1" "claim";
        Cae.argument "A1" "first route";
        Cae.argument "A2" "second route";
        Cae.evidence_ref "E1" "shared evidence";
      ]
  in
  Alcotest.(check bool) "warned" true
    (List.mem "cae/multiple-arguments" (codes (Cae.check c)));
  Alcotest.(check bool) "warning only" true (Cae.is_well_formed c)

(* --- GSN conversion --- *)

let gsn_sample =
  Structure.of_nodes
    ~links:
      [
        (Structure.Supported_by, "G1", "S1");
        (Structure.Supported_by, "S1", "G2");
        (Structure.Supported_by, "G2", "Sn1");
        (Structure.In_context_of, "G1", "C1");
        (Structure.In_context_of, "S1", "J1");
      ]
    ~evidence:
      [ Evidence.make ~id:(Id.of_string "E1") ~kind:Evidence.Analysis "a" ]
    [
      Node.goal "G1" "The system is acceptably safe";
      Node.strategy "S1" "Argue over hazards";
      Node.goal "G2" "Hazard H1 is managed";
      Node.solution ~evidence:"E1" "Sn1" "Analysis results";
      Node.context "C1" "Operating context";
      Node.justification "J1" "HAZOP-derived list";
    ]

let test_of_gsn_well_formed () =
  let cae = Cae.of_gsn gsn_sample in
  Alcotest.(check (list string)) "clean" [] (codes (Cae.check cae));
  (* Goals became claims, strategy an argument node, solution evidence. *)
  let find id = Cae.find (Id.of_string id) cae in
  (match find "G1" with
  | Some { Cae.node_type = Cae.Claim; _ } -> ()
  | _ -> Alcotest.fail "G1 should be a claim");
  (match find "S1" with
  | Some { Cae.node_type = Cae.Argument; _ } -> ()
  | _ -> Alcotest.fail "S1 should be an argument");
  match find "Sn1" with
  | Some { Cae.node_type = Cae.Evidence_ref; _ } -> ()
  | _ -> Alcotest.fail "Sn1 should be evidence"

let test_of_gsn_synthesises_arguments () =
  (* A goal supported directly by a solution needs a synthesised
     argument node in CAE. *)
  let gsn =
    Structure.of_nodes
      ~links:[ (Structure.Supported_by, "G1", "Sn1") ]
      ~evidence:
        [ Evidence.make ~id:(Id.of_string "E1") ~kind:Evidence.Review "r" ]
      [
        Node.goal "G1" "claim is safe";
        Node.solution ~evidence:"E1" "Sn1" "review results";
      ]
  in
  let cae = Cae.of_gsn gsn in
  Alcotest.(check (list string)) "clean" [] (codes (Cae.check cae));
  let args =
    List.filter (fun n -> n.Cae.node_type = Cae.Argument) (Cae.nodes cae)
  in
  Alcotest.(check int) "one synthesised argument" 1 (List.length args)

let test_to_gsn_round () =
  let gsn' = Cae.to_gsn sample in
  (* The translation of a well-formed CAE case is well-formed GSN except
     that evidence references are not registered items (solutions warn,
     never error). *)
  Alcotest.(check bool) "well-formed GSN" true (Wellformed.is_well_formed gsn')

(* Random GSN trees (goals/strategies/solutions) convert to well-formed
   CAE. *)
let gen_gsn =
  let open QCheck.Gen in
  let* n = int_range 1 5 in
  let counter = ref 0 in
  let fresh p =
    incr counter;
    Printf.sprintf "%s%d" p !counter
  in
  let rec goal depth =
    let gid = fresh "G" in
    let g = Node.goal gid (Printf.sprintf "claim %s is safe" gid) in
    if depth = 0 then
      let sid = fresh "Sn" in
      ( [ g; Node.solution sid "results" ],
        [ (Structure.Supported_by, gid, sid) ] )
    else
      let sid = fresh "S" in
      let strat = Node.strategy sid "decompose" in
      let children = List.init (1 + (depth mod 2)) (fun _ -> goal (depth - 1)) in
      ( (g :: strat :: List.concat_map fst children),
        ((Structure.Supported_by, gid, sid)
        :: List.map
             (fun (ns, _) ->
               (Structure.Supported_by, sid, Id.to_string (List.hd ns).Node.id))
             children)
        @ List.concat_map snd children )
  in
  let nodes, links = goal (n mod 3) in
  return (Structure.of_nodes ~links nodes)

let conversion_preserves_wellformedness =
  QCheck.Test.make ~name:"of_gsn yields well-formed CAE" ~count:100
    (QCheck.make gen_gsn) (fun gsn ->
      not (Diagnostic.has_errors (Cae.check (Cae.of_gsn gsn))))

let conversion_preserves_claims =
  QCheck.Test.make ~name:"every goal becomes a claim" ~count:100
    (QCheck.make gen_gsn) (fun gsn ->
      let cae = Cae.of_gsn gsn in
      List.for_all
        (fun n ->
          match n.Node.node_type with
          | Node.Goal -> (
              match Cae.find n.Node.id cae with
              | Some { Cae.node_type = Cae.Claim; _ } -> true
              | _ -> false)
          | _ -> true)
        (Structure.nodes gsn))

let () =
  Alcotest.run "argus-cae"
    [
      ( "checks",
        [
          Alcotest.test_case "sample well-formed" `Quick test_sample_well_formed;
          Alcotest.test_case "claim without argument" `Quick
            test_claim_without_argument;
          Alcotest.test_case "premise claims" `Quick test_premise_claims_allowed;
          Alcotest.test_case "empty argument" `Quick test_empty_argument;
          Alcotest.test_case "evidence not leaf" `Quick test_evidence_not_leaf;
          Alcotest.test_case "direct evidence" `Quick
            test_direct_evidence_under_claim;
          Alcotest.test_case "cycle" `Quick test_cycle;
          Alcotest.test_case "dangling" `Quick test_dangling;
          Alcotest.test_case "multiple arguments" `Quick
            test_multiple_arguments_warned;
        ] );
      ( "conversion",
        [
          Alcotest.test_case "of_gsn" `Quick test_of_gsn_well_formed;
          Alcotest.test_case "synthesised arguments" `Quick
            test_of_gsn_synthesises_arguments;
          Alcotest.test_case "to_gsn" `Quick test_to_gsn_round;
          QCheck_alcotest.to_alcotest conversion_preserves_wellformedness;
          QCheck_alcotest.to_alcotest conversion_preserves_claims;
        ] );
    ]
