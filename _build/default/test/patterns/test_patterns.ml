open Argus_patterns
module Gsn = Argus_gsn
module Structure = Argus_gsn.Structure
module Node = Argus_gsn.Node
module Wellformed = Argus_gsn.Wellformed
module Id = Argus_core.Id
module Evidence = Argus_core.Evidence
module Diagnostic = Argus_core.Diagnostic

let codes = function
  | Error ds -> List.map (fun d -> d.Diagnostic.code) ds
  | Ok _ -> []

(* The classic hazard-avoidance pattern: argue over each hazard in a
   list, with a CPU-utilisation side claim demonstrating the range check
   from Matsuno's paper. *)
let hazard_pattern =
  let structure =
    Structure.of_nodes
      ~links:
        [
          (Structure.Supported_by, "G_top", "S_hazards");
          (Structure.Supported_by, "S_hazards", "G_hazard");
          (Structure.Supported_by, "G_hazard", "Sn_hazard");
          (Structure.Supported_by, "G_top", "G_util");
          (Structure.Supported_by, "G_util", "Sn_util");
          (Structure.In_context_of, "G_top", "C_sys");
        ]
      ~evidence:
        [
          Evidence.make ~id:(Id.of_string "E_hz") ~kind:Evidence.Analysis
            "hazard analysis";
          Evidence.make ~id:(Id.of_string "E_util") ~kind:Evidence.Analysis
            "schedulability analysis";
        ]
      [
        Node.goal "G_top" "{system} is acceptably safe";
        Node.strategy "S_hazards" "Argument over each identified hazard";
        Node.goal "G_hazard" "Hazard {hazard} is acceptably managed";
        Node.solution ~evidence:"E_hz" "Sn_hazard" "Analysis of hazard {hazard}";
        Node.goal "G_util" "CPU utilisation is below {util} percent";
        Node.solution ~evidence:"E_util" "Sn_util" "Schedulability analysis";
        Node.context "C_sys" "Definition of {system}";
      ]
  in
  Pattern.make ~name:"hazard-avoidance"
    ~description:"argue safety hazard-by-hazard"
    ~params:
      [
        { Pattern.pname = "system"; ptype = Pattern.Pstring };
        {
          Pattern.pname = "util";
          ptype = Pattern.Pint { min = Some 0; max = Some 100 };
        };
        {
          Pattern.pname = "hazard";
          ptype = Pattern.Plist Pattern.Pstring;
        };
      ]
    ~replicate:[ ("G_hazard", "hazard") ]
    structure

let good_binding =
  [
    ("system", Pattern.Vstr "The braking controller");
    ("util", Pattern.Vint 85);
    ( "hazard",
      Pattern.Vlist [ Pattern.Vstr "unintended braking"; Pattern.Vstr "brake failure" ]
    );
  ]

let test_pattern_is_clean () =
  Alcotest.(check (list string)) "no issues" []
    (List.map (fun d -> d.Diagnostic.code) (Pattern.check_pattern hazard_pattern))

let test_placeholders () =
  Alcotest.(check (list string))
    "extracted" [ "system"; "hazard" ]
    (Pattern.placeholders "{system} avoids {hazard}")

let test_instantiate_ok () =
  match Pattern.instantiate hazard_pattern good_binding with
  | Error ds ->
      Alcotest.failf "instantiation failed: %s"
        (Format.asprintf "%a" Diagnostic.pp_report ds)
  | Ok s ->
      (* Two hazards: the G_hazard/Sn_hazard pair is duplicated. *)
      Alcotest.(check bool) "copy 1" true (Structure.mem (Id.of_string "G_hazard_1") s);
      Alcotest.(check bool) "copy 2" true (Structure.mem (Id.of_string "G_hazard_2") s);
      Alcotest.(check bool) "template removed" false
        (Structure.mem (Id.of_string "G_hazard") s);
      let g1 = Structure.find_exn (Id.of_string "G_hazard_1") s in
      Alcotest.(check string) "first element substituted"
        "Hazard unintended braking is acceptably managed" g1.Node.text;
      let top = Structure.find_exn (Id.of_string "G_top") s in
      Alcotest.(check string) "scalar substituted"
        "The braking controller is acceptably safe" top.Node.text;
      (* Instantiation output is well-formed GSN. *)
      let ds = Wellformed.check s in
      Alcotest.(check (list string)) "well-formed" []
        (List.map (fun d -> d.Diagnostic.code) ds)

let test_missing_param () =
  let binding = List.remove_assoc "util" good_binding in
  Alcotest.(check bool) "missing" true
    (List.mem "instantiate/missing-param"
       (codes (Pattern.instantiate hazard_pattern binding)))

let test_out_of_range () =
  (* Matsuno's example: CPU utilisation must lie in 0-100. *)
  let binding =
    ("util", Pattern.Vint 250) :: List.remove_assoc "util" good_binding
  in
  Alcotest.(check bool) "range" true
    (List.mem "instantiate/out-of-range"
       (codes (Pattern.instantiate hazard_pattern binding)))

let test_type_mismatch () =
  (* The "Railway hazards" misuse from Matsuno & Taguchi: a string where
     an integer parameter is expected. *)
  let binding =
    ("util", Pattern.Vstr "Railway hazards") :: List.remove_assoc "util" good_binding
  in
  Alcotest.(check bool) "mismatch" true
    (List.mem "instantiate/type-mismatch"
       (codes (Pattern.instantiate hazard_pattern binding)))

let test_unknown_param () =
  let binding = ("extra", Pattern.Vint 1) :: good_binding in
  Alcotest.(check bool) "unknown" true
    (List.mem "instantiate/unknown-param"
       (codes (Pattern.instantiate hazard_pattern binding)))

let test_empty_list () =
  let binding =
    ("hazard", Pattern.Vlist []) :: List.remove_assoc "hazard" good_binding
  in
  Alcotest.(check bool) "empty list" true
    (List.mem "instantiate/empty-list"
       (codes (Pattern.instantiate hazard_pattern binding)))

let test_enum_membership () =
  let p =
    Pattern.make ~name:"enum-test"
      ~params:
        [
          {
            Pattern.pname = "sev";
            ptype = Pattern.Penum [ "catastrophic"; "major"; "minor" ];
          };
        ]
      (Structure.of_nodes
         [
           {
             (Node.goal "G" "Severity {sev} hazards are managed")
             with
             Node.status = Node.Undeveloped;
           };
         ])
  in
  (match Pattern.instantiate p [ ("sev", Pattern.Venum "major") ] with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "member should instantiate");
  Alcotest.(check bool) "non-member rejected" true
    (List.mem "instantiate/not-a-member"
       (codes (Pattern.instantiate p [ ("sev", Pattern.Venum "trivial") ])))

let test_undeclared_placeholder () =
  let p =
    Pattern.make ~name:"bad" ~params:[]
      (Structure.of_nodes
         [
           {
             (Node.goal "G" "The {mystery} is safe")
             with
             Node.status = Node.Undeveloped;
           };
         ])
  in
  Alcotest.(check bool) "flagged" true
    (List.exists
       (fun d -> d.Diagnostic.code = "pattern/undeclared-placeholder")
       (Pattern.check_pattern p))

let test_unused_param () =
  let p =
    Pattern.make ~name:"lazy"
      ~params:[ { Pattern.pname = "ghost"; ptype = Pattern.Pstring } ]
      (Structure.of_nodes
         [ { (Node.goal "G" "all is safe") with Node.status = Node.Undeveloped } ])
  in
  Alcotest.(check bool) "warned" true
    (List.exists
       (fun d -> d.Diagnostic.code = "pattern/unused-param")
       (Pattern.check_pattern p))

let test_replicate_not_list () =
  let p =
    Pattern.make ~name:"bad-rep"
      ~params:[ { Pattern.pname = "x"; ptype = Pattern.Pstring } ]
      ~replicate:[ ("G", "x") ]
      (Structure.of_nodes
         [ { (Node.goal "G" "{x} is safe") with Node.status = Node.Undeveloped } ])
  in
  Alcotest.(check bool) "flagged" true
    (List.exists
       (fun d -> d.Diagnostic.code = "pattern/replicate-not-list")
       (Pattern.check_pattern p))

(* Property: for any list length 1-6, instantiation yields a well-formed
   structure with exactly n copies, and no placeholders remain. *)
let replication_scales =
  QCheck.Test.make ~name:"replication produces n well-formed copies" ~count:50
    QCheck.(int_range 1 6)
    (fun n ->
      let binding =
        [
          ("system", Pattern.Vstr "S");
          ("util", Pattern.Vint 50);
          ( "hazard",
            Pattern.Vlist
              (List.init n (fun i -> Pattern.Vstr (Printf.sprintf "hazard %d" i)))
          );
        ]
      in
      match Pattern.instantiate hazard_pattern binding with
      | Error _ -> false
      | Ok s ->
          let copies =
            List.filter
              (fun node ->
                let id = Id.to_string node.Node.id in
                String.length id > 9 && String.sub id 0 9 = "G_hazard_")
              (Structure.nodes s)
          in
          List.length copies = n
          && Wellformed.is_well_formed s
          && Structure.fold_nodes
               (fun node ok -> ok && Pattern.placeholders node.Node.text = [])
               s true)

let int_range_check =
  QCheck.Test.make ~name:"int range accepts exactly [0,100]" ~count:200
    QCheck.(int_range (-50) 150)
    (fun i ->
      let ok =
        Pattern.value_type_ok
          (Pattern.Pint { min = Some 0; max = Some 100 })
          (Pattern.Vint i)
      in
      Bool.equal ok (i >= 0 && i <= 100))

(* --- Catalogue --- *)

let test_catalogue_definitions_clean () =
  List.iter
    (fun (name, pattern) ->
      let errors =
        List.filter
          (fun d -> d.Diagnostic.severity = Diagnostic.Error)
          (Pattern.check_pattern pattern)
      in
      if errors <> [] then
        Alcotest.failf "catalogue pattern %s has definition errors: %s" name
          (Format.asprintf "%a" Diagnostic.pp_report errors))
    Catalogue.all

let test_catalogue_instantiations () =
  let str s = Pattern.Vstr s in
  let strs l = Pattern.Vlist (List.map str l) in
  let cases =
    [
      ( Catalogue.hazard_avoidance,
        [
          ("system", str "The autonomous shuttle");
          ("hazards", strs [ "collision"; "door trap" ]);
        ] );
      ( Catalogue.functional_decomposition,
        [
          ("system", str "The infusion pump");
          ("functions", strs [ "dosing"; "alarm handling"; "logging" ]);
        ] );
      ( Catalogue.alarp,
        [
          ("system", str "The crane");
          ("intolerable_hazards", strs [ "load drop over crowd" ]);
          ("tolerable_hazards", strs [ "slow slew"; "cab vibration" ]);
          ("risk_budget", Pattern.Vint 100);
        ] );
      ( Catalogue.diverse_evidence,
        [
          ("claim", str "The watchdog restarts hung tasks");
          ("primary_kind", Pattern.Venum "test");
          ("secondary", str "field experience from the previous variant");
        ] );
    ]
  in
  List.iter
    (fun (pattern, binding) ->
      match Pattern.instantiate pattern binding with
      | Error ds ->
          Alcotest.failf "instantiation failed: %s"
            (Format.asprintf "%a" Diagnostic.pp_report ds)
      | Ok s ->
          if not (Wellformed.is_well_formed s) then
            Alcotest.failf "instantiated %s not well-formed"
              (Format.asprintf "%a" Structure.pp_outline s))
    cases

let test_catalogue_find () =
  Alcotest.(check bool) "finds alarp" true (Catalogue.find "alarp" <> None);
  Alcotest.(check bool) "unknown" true (Catalogue.find "nonesuch" = None);
  Alcotest.(check int) "four patterns" 4 (List.length Catalogue.all)

let test_alarp_budget_range () =
  let binding =
    [
      ("system", Pattern.Vstr "x");
      ("intolerable_hazards", Pattern.Vlist [ Pattern.Vstr "h" ]);
      ("tolerable_hazards", Pattern.Vlist [ Pattern.Vstr "k" ]);
      ("risk_budget", Pattern.Vint 5000);
    ]
  in
  Alcotest.(check bool) "budget range enforced" true
    (List.mem "instantiate/out-of-range"
       (codes (Pattern.instantiate Catalogue.alarp binding)))

let () =
  Alcotest.run "argus-patterns"
    [
      ( "definition",
        [
          Alcotest.test_case "hazard pattern is clean" `Quick
            test_pattern_is_clean;
          Alcotest.test_case "placeholders" `Quick test_placeholders;
          Alcotest.test_case "undeclared placeholder" `Quick
            test_undeclared_placeholder;
          Alcotest.test_case "unused param" `Quick test_unused_param;
          Alcotest.test_case "replicate not list" `Quick test_replicate_not_list;
        ] );
      ( "instantiation",
        [
          Alcotest.test_case "successful instantiation" `Quick
            test_instantiate_ok;
          Alcotest.test_case "missing param" `Quick test_missing_param;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
          Alcotest.test_case "type mismatch" `Quick test_type_mismatch;
          Alcotest.test_case "unknown param" `Quick test_unknown_param;
          Alcotest.test_case "empty list" `Quick test_empty_list;
          Alcotest.test_case "enum membership" `Quick test_enum_membership;
          QCheck_alcotest.to_alcotest replication_scales;
          QCheck_alcotest.to_alcotest int_range_check;
        ] );
      ( "catalogue",
        [
          Alcotest.test_case "definitions clean" `Quick
            test_catalogue_definitions_clean;
          Alcotest.test_case "instantiations well-formed" `Quick
            test_catalogue_instantiations;
          Alcotest.test_case "lookup" `Quick test_catalogue_find;
          Alcotest.test_case "alarp budget range" `Quick
            test_alarp_budget_range;
        ] );
    ]
