(* Robustness: every parser returns a result (never raises) on arbitrary
   input, and every checker is total on arbitrary structures — the
   failure-injection half of the test plan.  Inputs here are adversarial
   by construction: random printable garbage, half-mutated valid
   documents, and randomly-wired graphs with every node type. *)

module Id = Argus_core.Id
module Structure = Argus_gsn.Structure
module Node = Argus_gsn.Node
module Wellformed = Argus_gsn.Wellformed
module Diagnostic = Argus_core.Diagnostic

let printable_char = QCheck.Gen.(map Char.chr (int_range 32 126))

let garbage = QCheck.Gen.(string_size ~gen:printable_char (int_bound 200))

(* Mutate a valid document: splice garbage into the middle. *)
let mutated base =
  QCheck.Gen.(
    let* splice = string_size ~gen:printable_char (int_bound 20) in
    let* pos = int_bound (max 1 (String.length base - 1)) in
    return
      (String.sub base 0 pos ^ splice
      ^ String.sub base pos (String.length base - pos)))

let valid_case =
  {|case "x" {
     evidence E1 analysis "a"
     goal G1 "g is safe" { supported-by Sn1 }
     solution Sn1 "s" { evidence E1 }
   }|}

let total name f gen =
  QCheck.Test.make ~name ~count:500 (QCheck.make gen) (fun input ->
      match f input with _ -> true | exception _ -> false)

let parser_totality =
  [
    total "Prop.of_string is total" Argus_logic.Prop.of_string garbage;
    total "Term.of_string is total" Argus_logic.Term.of_string garbage;
    total "Ltl.of_string is total" Argus_ltl.Ltl.of_string garbage;
    total "Program.of_string is total" Argus_prolog.Program.of_string garbage;
    total "Toulmin.of_string is total" Argus_toulmin.Toulmin.of_string garbage;
    total "Dsl.parse is total on garbage" Argus_dsl.Dsl.parse garbage;
    total "Dsl.parse is total on mutated cases" Argus_dsl.Dsl.parse
      (mutated valid_case);
    total "Dsl.parse_collection is total" Argus_dsl.Dsl.parse_collection
      (mutated (valid_case ^ "\n" ^ valid_case));
    total "Query.of_string is total" Argus_gsn.Query.of_string garbage;
    total "Metadata.annotation_of_string is total"
      Argus_gsn.Metadata.annotation_of_string garbage;
    total "Proof_text.parse is total" Argus_logic.Proof_text.parse garbage;
  ]

(* Random structures wired arbitrarily: any node type, any link,
   dangling endpoints, self-loops, cycles. *)
let gen_chaotic_structure =
  let open QCheck.Gen in
  let* n_nodes = int_range 0 12 in
  let* n_links = int_range 0 25 in
  let node_type i =
    match i mod 9 with
    | 0 -> Node.Goal
    | 1 -> Node.Strategy
    | 2 -> Node.Solution
    | 3 -> Node.Context
    | 4 -> Node.Assumption
    | 5 -> Node.Justification
    | 6 -> Node.Away_goal (Id.of_string "M")
    | 7 -> Node.Module_ref (Id.of_string "M")
    | _ -> Node.Contract (Id.of_string "M")
  in
  let* type_seeds = list_size (return n_nodes) (int_bound 8) in
  let* statuses =
    list_size (return n_nodes)
      (oneofl
         [
           Node.Developed; Node.Undeveloped; Node.Uninstantiated;
           Node.Undeveloped_uninstantiated;
         ])
  in
  let nodes =
    List.mapi
      (fun i (seed, status) ->
        Node.make
          ~id:(Id.of_string (Printf.sprintf "n%d" i))
          ~node_type:(node_type seed) ~status
          (if i mod 3 = 0 then "" else Printf.sprintf "node %d text {x}" i))
      (List.combine type_seeds statuses)
  in
  let* link_pairs =
    list_size (return n_links)
      (triple (int_bound (max 1 n_nodes + 2)) (int_bound (max 1 n_nodes + 2)) bool)
  in
  let structure = List.fold_left (fun s n -> Structure.add_node n s) Structure.empty nodes in
  let structure =
    List.fold_left
      (fun s (a, b, ctx) ->
        Structure.connect
          (if ctx then Structure.In_context_of else Structure.Supported_by)
          ~src:(Id.of_string (Printf.sprintf "n%d" a))
          ~dst:(Id.of_string (Printf.sprintf "n%d" b))
          s)
      structure link_pairs
  in
  return structure

let checker_totality =
  [
    QCheck.Test.make ~name:"Wellformed.check is total on chaos" ~count:300
      (QCheck.make gen_chaotic_structure) (fun s ->
        match Wellformed.check s with _ -> true | exception _ -> false);
    QCheck.Test.make ~name:"strict ruleset is total on chaos" ~count:300
      (QCheck.make gen_chaotic_structure) (fun s ->
        match Wellformed.check ~ruleset:Wellformed.Denney_pai_2013 s with
        | _ -> true
        | exception _ -> false);
    QCheck.Test.make ~name:"informal lints are total on chaos" ~count:300
      (QCheck.make gen_chaotic_structure) (fun s ->
        match Argus_fallacy.Informal.check_structure s with
        | _ -> true
        | exception _ -> false);
    QCheck.Test.make ~name:"CAE conversion+check total on chaos" ~count:300
      (QCheck.make gen_chaotic_structure) (fun s ->
        match Argus_cae.Cae.check (Argus_cae.Cae.of_gsn s) with
        | _ -> true
        | exception _ -> false);
    QCheck.Test.make ~name:"has_cycle is total on chaos" ~count:300
      (QCheck.make gen_chaotic_structure) (fun s ->
        match Structure.has_cycle s with _ -> true | exception _ -> false);
    QCheck.Test.make ~name:"outline printing is total on chaos" ~count:300
      (QCheck.make gen_chaotic_structure) (fun s ->
        match Format.asprintf "%a" Structure.pp_outline s with
        | _ -> true
        | exception _ -> false);
    QCheck.Test.make ~name:"dot rendering is total on chaos" ~count:300
      (QCheck.make gen_chaotic_structure) (fun s ->
        match Structure.to_dot s with _ -> true | exception _ -> false);
  ]

(* Cross-check: a structure with an error diagnostic is never reported
   well-formed, and vice versa. *)
let wellformed_consistency =
  QCheck.Test.make ~name:"is_well_formed agrees with check" ~count:300
    (QCheck.make gen_chaotic_structure) (fun s ->
      Bool.equal (Wellformed.is_well_formed s)
        (not (Diagnostic.has_errors (Wellformed.check s))))

let () =
  Alcotest.run "argus-fuzz"
    [
      ("parser-totality", List.map QCheck_alcotest.to_alcotest parser_totality);
      ( "checker-totality",
        List.map QCheck_alcotest.to_alcotest checker_totality );
      ( "consistency",
        [ QCheck_alcotest.to_alcotest wellformed_consistency ] );
    ]
