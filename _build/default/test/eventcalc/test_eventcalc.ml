open Argus_eventcalc
module Term = Argus_logic.Term

let t s = Result.get_ok (Term.of_string s)

(* The surveyed paper's example, concretised: a user taps a subject's
   icon; if they are friends (or on the same platform), a location query
   happens and the subject's location becomes visible to the user. *)
let tap = t "tap(alice, bob)"
let friends = t "friends(alice, bob)"
let location_visible = t "location_visible(alice, bob)"
let unfriend = t "unfriend(alice, bob)"
let befriended = t "befriend(alice, bob)"

let axioms =
  [
    {
      Eventcalc.event = tap;
      conditions = [ friends ];
      initiates = [ location_visible ];
      terminates = [];
    };
    {
      Eventcalc.event = unfriend;
      conditions = [];
      initiates = [];
      terminates = [ friends; location_visible ];
    };
    {
      Eventcalc.event = befriended;
      conditions = [];
      initiates = [ friends ];
      terminates = [];
    };
  ]

let friendly_run =
  Eventcalc.make ~initially:[ friends ] ~axioms [ (1, tap); (4, unfriend) ]

let stranger_run = Eventcalc.make ~initially:[] ~axioms [ (1, tap) ]

let test_inertia () =
  Alcotest.(check bool) "initial fluent persists" true
    (Eventcalc.holds_at friendly_run 1 friends);
  Alcotest.(check bool) "not visible before tap effect" false
    (Eventcalc.holds_at friendly_run 1 location_visible);
  Alcotest.(check bool) "visible after tap" true
    (Eventcalc.holds_at friendly_run 2 location_visible);
  Alcotest.(check bool) "still visible (inertia)" true
    (Eventcalc.holds_at friendly_run 4 location_visible);
  Alcotest.(check bool) "terminated by unfriend" false
    (Eventcalc.holds_at friendly_run 5 location_visible);
  Alcotest.(check bool) "friendship terminated too" false
    (Eventcalc.holds_at friendly_run 5 friends)

let test_conditions_gate_effects () =
  (* A stranger's tap initiates nothing: the condition fails. *)
  Alcotest.(check bool) "no disclosure to stranger" false
    (Eventcalc.holds_at stranger_run 2 location_visible)

let test_happens_at () =
  Alcotest.(check int) "one event at t=1" 1
    (List.length (Eventcalc.happens_at friendly_run 1));
  Alcotest.(check int) "nothing at t=0" 0
    (List.length (Eventcalc.happens_at friendly_run 0))

let test_horizon () =
  Alcotest.(check int) "horizon" 5 (Eventcalc.horizon friendly_run)

let test_availability () =
  (* Information availability: after every tap (by a friend), the
     location is visible within one step. *)
  Alcotest.(check bool) "available for friends" true
    (Eventcalc.availability friendly_run ~after:tap location_visible);
  Alcotest.(check bool) "not available for strangers" false
    (Eventcalc.availability stranger_run ~after:tap location_visible)

let test_denial () =
  (* Denial: whenever the pair are not friends, the location is not
     visible. *)
  Alcotest.(check bool) "denial holds on the friendly run" true
    (Eventcalc.denial friendly_run ~when_not:friends location_visible);
  Alcotest.(check bool) "denial holds on the stranger run" true
    (Eventcalc.denial stranger_run ~when_not:friends location_visible);
  (* A policy-violating system: tap initiates visibility
     unconditionally. *)
  let leaky_axioms =
    [
      {
        Eventcalc.event = tap;
        conditions = [];
        initiates = [ location_visible ];
        terminates = [];
      };
    ]
  in
  let leaky = Eventcalc.make ~initially:[] ~axioms:leaky_axioms [ (1, tap) ] in
  Alcotest.(check bool) "denial violated by the leaky system" false
    (Eventcalc.denial leaky ~when_not:friends location_visible)

let test_explanation () =
  (* Explanation: why is the location visible at t=3? *)
  (match Eventcalc.explanation friendly_run 3 location_visible with
  | [ (1, e) ] ->
      Alcotest.(check bool) "the tap explains it" true (Term.equal e tap)
  | _ -> Alcotest.fail "expected the single tap occurrence");
  Alcotest.(check int) "nothing to explain when it does not hold" 0
    (List.length (Eventcalc.explanation friendly_run 0 location_visible))

let test_initially_unexplained () =
  Alcotest.(check int) "initial fluent has no event explanation" 0
    (List.length (Eventcalc.explanation friendly_run 1 friends))

(* --- Properties --- *)

(* Inertia: with no terminating axioms, fluents only accumulate. *)
let monotone_accumulation =
  QCheck.Test.make ~name:"without termination, fluents accumulate" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 6) (QCheck.int_bound 5))
    (fun times ->
      let ax =
        [
          {
            Eventcalc.event = t "ping";
            conditions = [];
            initiates = [ t "seen" ];
            terminates = [];
          };
        ]
      in
      let sys =
        Eventcalc.make ~axioms:ax (List.map (fun tm -> (tm, t "ping")) times)
      in
      let h = Eventcalc.horizon sys in
      let rec monotone time held =
        time > h + 1
        ||
        let now = Eventcalc.holds_at sys time (t "seen") in
        ((not held) || now) && monotone (time + 1) now
      in
      monotone 0 false)

(* Determinism: same narrative, same states. *)
let deterministic =
  QCheck.Test.make ~name:"state computation is deterministic" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 0 5) (QCheck.int_bound 6))
    (fun times ->
      let narrative = List.map (fun tm -> (tm, t "ping")) times in
      let ax =
        [
          {
            Eventcalc.event = t "ping";
            conditions = [];
            initiates = [ t "on" ];
            terminates = [ t "off" ];
          };
        ]
      in
      let s1 = Eventcalc.make ~initially:[ t "off" ] ~axioms:ax narrative in
      let s2 = Eventcalc.make ~initially:[ t "off" ] ~axioms:ax narrative in
      List.for_all
        (fun time ->
          Eventcalc.state_at s1 time = Eventcalc.state_at s2 time)
        (List.init (Eventcalc.horizon s1 + 1) Fun.id))

let () =
  Alcotest.run "argus-eventcalc"
    [
      ( "semantics",
        [
          Alcotest.test_case "inertia" `Quick test_inertia;
          Alcotest.test_case "conditions gate effects" `Quick
            test_conditions_gate_effects;
          Alcotest.test_case "happens_at" `Quick test_happens_at;
          Alcotest.test_case "horizon" `Quick test_horizon;
          QCheck_alcotest.to_alcotest monotone_accumulation;
          QCheck_alcotest.to_alcotest deterministic;
        ] );
      ( "privacy-properties",
        [
          Alcotest.test_case "availability" `Quick test_availability;
          Alcotest.test_case "denial" `Quick test_denial;
          Alcotest.test_case "explanation" `Quick test_explanation;
          Alcotest.test_case "initially unexplained" `Quick
            test_initially_unexplained;
        ] );
    ]
