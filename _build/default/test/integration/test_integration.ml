(* End-to-end integration: a realistic mid-sized case driven through the
   whole toolchain — parse, check, query, view, convert, score, probe —
   asserting the pieces compose. *)

open Argus_dsl.Dsl
module Id = Argus_core.Id
module Diagnostic = Argus_core.Diagnostic
module Evidence = Argus_core.Evidence
module Structure = Argus_gsn.Structure
module Node = Argus_gsn.Node
module Wellformed = Argus_gsn.Wellformed
module Query = Argus_gsn.Query
module Hicase = Argus_gsn.Hicase
module Cae = Argus_cae.Cae
module Informal = Argus_fallacy.Informal
module Confidence = Argus_confidence.Confidence

(* An insulin-pump safety case: three hazards, diverse evidence,
   metadata throughout, one formally-annotated goal. *)
let case_text =
  {|
case "Insulin pump safety" {
  enum severity { catastrophic hazardous major minor }
  enum likelihood { frequent probable remote improbable }
  attr hazard (string, severity, likelihood)
  attr sil (nat)

  evidence E_dose analysis "Dose computation worst-case analysis"
    source "report DC-3" strength statistical
  evidence E_hw test-results "Hardware fault-injection campaign"
    source "campaign FI-7"
  evidence E_ui review "Usability study with 30 nurses"
    source "study U-2"
  evidence E_fld field-data "Post-market surveillance, 4 years"
    source "PMS database"
  evidence E_alarm test-results "Alarm chain end-to-end tests"

  goal G_top "The pump is acceptably safe for home use" {
    formal "overdose_managed & hw_managed & use_error_managed"
    in-context-of C_ctx, A_user
    supported-by S_hazards
  }
  strategy S_hazards "Argument over each identified hazard" {
    in-context-of J_hazop
    supported-by G_overdose, G_hw, G_use
  }

  goal G_overdose "Hazard: insulin overdose is acceptably managed" {
    meta "hazard \"overdose\" catastrophic remote"
    meta "sil 4"
    supported-by G_dose_calc, G_field
  }
  goal G_dose_calc "Dose computation is bounded by the prescription" {
    supported-by Sn_dose
  }
  goal G_field "No overdose event has occurred in four years of field data" {
    supported-by Sn_fld
  }
  solution Sn_dose "Worst-case dose analysis" { evidence E_dose }
  solution Sn_fld "Surveillance data" { evidence E_fld }

  goal G_hw "Hazard: hardware fault causing free flow is acceptably managed" {
    meta "hazard \"free-flow\" catastrophic improbable"
    meta "sil 4"
    supported-by Sn_hw
  }
  solution Sn_hw "Fault injection results" { evidence E_hw }

  goal G_use "Hazard: use error leading to wrong dose is acceptably managed" {
    meta "hazard \"use-error\" hazardous probable"
    meta "sil 2"
    supported-by G_ui, G_alarm
  }
  goal G_ui "The interface prevents common programming slips" {
    supported-by Sn_ui
  }
  goal G_alarm "Unacknowledged faults are escalated as alarms" {
    supported-by Sn_alarm
  }
  solution Sn_ui "Usability study results" { evidence E_ui }
  solution Sn_alarm "Alarm chain test results" { evidence E_alarm }

  context C_ctx "Home use by adult patients, EU MDR class IIb"
  assumption A_user "Patients receive the standard training programme"
  justification J_hazop "Hazard list from HAZOP plus post-market data"
}
|}

let case = parse_exn ~filename:"pump.arg" case_text
let s = case.structure

let test_parses_and_checks () =
  Alcotest.(check int) "node count" 17 (Structure.size s);
  Alcotest.(check (list string)) "well-formed" []
    (List.map (fun d -> d.Diagnostic.code) (Wellformed.check s));
  Alcotest.(check (list string)) "metadata valid" []
    (List.map (fun d -> d.Diagnostic.code) (validate_metadata case));
  Alcotest.(check (list string)) "no informal lints" []
    (List.map (fun d -> d.Diagnostic.code) (Informal.check_structure s))

let test_queries () =
  let q = Result.get_ok (Query.of_string "sil >= 4") in
  Alcotest.(check int) "two sil-4 hazards" 2 (List.length (Query.select q s));
  let trace =
    Query.trace_view
      (Result.get_ok (Query.of_string "hazard = \"use-error\""))
      s
  in
  (* The trace view keeps the path to the root and drops the other
     hazard subtrees. *)
  Alcotest.(check bool) "keeps root" true (Structure.mem (Id.of_string "G_top") trace);
  Alcotest.(check bool) "drops other hazards" false
    (Structure.mem (Id.of_string "G_hw") trace);
  Alcotest.(check bool) "trace view well-formed" true
    (Wellformed.is_well_formed trace)

let test_views () =
  let hc = Hicase.collapse_to_depth 2 (Hicase.of_structure s) in
  let v = Hicase.visible hc in
  Alcotest.(check bool) "view smaller" true
    (Structure.size v < Structure.size s);
  Alcotest.(check bool) "view well-formed" true (Wellformed.is_well_formed v)

let test_cae_conversion () =
  let cae = Cae.of_gsn s in
  Alcotest.(check bool) "CAE well-formed" true (Cae.is_well_formed cae);
  Alcotest.(check bool) "round-trip GSN well-formed" true
    (Wellformed.is_well_formed (Cae.to_gsn cae))

let test_confidence_and_sufficiency () =
  let trust (ev : Evidence.t) =
    match ev.Evidence.kind with
    | Evidence.Formal_proof -> 0.99
    | Evidence.Analysis -> 0.9
    | Evidence.Test_results -> 0.85
    | Evidence.Field_data -> 0.8
    | Evidence.Review -> 0.7
    | _ -> 0.6
  in
  let root = Confidence.root_confidence ~trust s in
  Alcotest.(check bool) "confidence strictly inside (0,1)" true
    (root > 0.0 && root < 1.0);
  (* The overdose hazard has diverse legs, so no single item there is
     fully load-bearing; the hardware hazard rests on one campaign. *)
  let sens id = Confidence.sensitivity ~trust s (Id.of_string id) in
  Alcotest.(check bool) "single-leg evidence dominates" true
    (sens "E_hw" > sens "E_dose");
  Alcotest.(check bool) "diverse legs damp sensitivity" true
    (sens "E_dose" < root);
  (* Tracing reaches the root from every evidence item. *)
  List.iter
    (fun eid ->
      let impacted = Confidence.impact_by_tracing s (Id.of_string eid) in
      if not (List.exists (Id.equal (Id.of_string "G_top")) impacted) then
        Alcotest.failf "%s does not trace to the root" eid)
    [ "E_dose"; "E_hw"; "E_ui"; "E_fld"; "E_alarm" ]

let test_print_parse_stability () =
  let printed = print case in
  let reparsed = parse_exn printed in
  Alcotest.(check bool) "structures equal" true
    (Structure.equal s reparsed.structure);
  Alcotest.(check string) "idempotent formatting" printed (print reparsed)

let () =
  Alcotest.run "argus-integration"
    [
      ( "insulin-pump",
        [
          Alcotest.test_case "parses and checks" `Quick test_parses_and_checks;
          Alcotest.test_case "queries" `Quick test_queries;
          Alcotest.test_case "views" `Quick test_views;
          Alcotest.test_case "cae conversion" `Quick test_cae_conversion;
          Alcotest.test_case "confidence and sufficiency" `Quick
            test_confidence_and_sufficiency;
          Alcotest.test_case "print/parse stability" `Quick
            test_print_parse_stability;
        ] );
    ]
