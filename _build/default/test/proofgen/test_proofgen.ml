module Prop = Argus_logic.Prop
module Natded = Argus_logic.Natded
module Structure = Argus_gsn.Structure
module Node = Argus_gsn.Node
module Wellformed = Argus_gsn.Wellformed
module Id = Argus_core.Id
module Evidence = Argus_core.Evidence
module Proofgen = Argus_proofgen.Proofgen
module Confidence = Argus_confidence.Confidence
module Diagnostic = Argus_core.Diagnostic

let p = Prop.of_string_exn

let haley_proof =
  Natded.
    [
      { formula = p "i -> v"; rule = Premise };
      { formula = p "c -> h"; rule = Premise };
      { formula = p "y -> v & c"; rule = Premise };
      { formula = p "d -> y"; rule = Premise };
      { formula = p "d"; rule = Premise };
      { formula = p "y"; rule = Imp_elim (4, 5) };
      { formula = p "v & c"; rule = Imp_elim (3, 6) };
      { formula = p "v"; rule = And_elim_left 7 };
      { formula = p "c"; rule = And_elim_right 7 };
      { formula = p "h"; rule = Imp_elim (2, 9) };
      { formula = p "d -> h"; rule = Imp_intro (5, 10) };
    ]

let checked = Result.get_ok (Natded.check haley_proof)
let generated = Proofgen.generate checked

(* --- Generation --- *)

let test_generated_is_well_formed () =
  let ds = Wellformed.check generated in
  Alcotest.(check (list string)) "clean" []
    (List.map (fun d -> d.Diagnostic.code) ds)

let test_generated_root_is_conclusion () =
  match Structure.roots generated with
  | [ root ] ->
      let n = Structure.find_exn root generated in
      Alcotest.(check string) "text" "d -> h holds" n.Node.text;
      Alcotest.(check bool) "formal attached" true
        (n.Node.formal = Some (p "d -> h"))
  | roots ->
      Alcotest.failf "expected one root, got %d" (List.length roots)

let test_unused_premise_excluded () =
  (* Step 1 (i -> v) is never cited; no goal should be generated for it. *)
  Alcotest.(check bool) "step-1 goal absent" false
    (Structure.mem (Id.of_string "p_G1") generated)

let test_premises_get_solutions () =
  (* Steps 2-5 are premises in the cone: each has a solution citing
     expert-judgement evidence. *)
  List.iter
    (fun k ->
      let sid = Id.of_string (Printf.sprintf "p_Sn%d" k) in
      match Structure.find sid generated with
      | Some { Node.node_type = Node.Solution; Node.evidence = Some ev; _ } ->
          (match Structure.find_evidence ev generated with
          | Some e ->
              Alcotest.(check bool) "expert judgement" true
                (e.Evidence.kind = Evidence.Expert_judgement)
          | None -> Alcotest.fail "evidence missing")
      | _ -> Alcotest.failf "solution for premise %d missing" k)
    [ 2; 3; 4; 5 ]

let test_goal_texts_are_propositions () =
  (* The paper criticises generated goals that are not propositions;
     ours all are (by the checker's heuristic). *)
  List.iter
    (fun n ->
      if n.Node.node_type = Node.Goal then
        Alcotest.(check bool)
          (Printf.sprintf "%s propositional" (Id.to_string n.Node.id))
          true
          (Node.looks_propositional n.Node.text))
    (Structure.nodes generated)

(* --- Abstraction --- *)

let test_abstract_shrinks () =
  let abstracted = Proofgen.abstract generated in
  Alcotest.(check bool) "smaller" true
    (Proofgen.node_count abstracted < Proofgen.node_count generated);
  Alcotest.(check (list string)) "still well-formed" []
    (List.map (fun d -> d.Diagnostic.code) (Wellformed.check abstracted));
  (* Root preserved. *)
  Alcotest.(check bool) "same root" true
    (Structure.roots abstracted = Structure.roots generated)

let test_abstract_idempotent () =
  let once = Proofgen.abstract generated in
  let twice = Proofgen.abstract once in
  Alcotest.(check bool) "idempotent" true (Structure.equal once twice)

(* Random proofs: generation always yields well-formed GSN; abstraction
   preserves well-formedness, the root, and never grows. *)
let gen_proof =
  let open QCheck.Gen in
  let* n_prem = int_range 2 4 in
  let premises =
    List.init n_prem (fun i ->
        Natded.{ formula = Prop.Var (Printf.sprintf "q%d" i); rule = Premise })
  in
  let* n_steps = int_range 2 8 in
  let rec extend proof k =
    if k = 0 then return (List.rev proof)
    else
      let len = List.length proof in
      let nth_formula i = (List.nth (List.rev proof) (i - 1)).Natded.formula in
      let* i = int_range 1 len in
      let* j = int_range 1 len in
      let* choice = int_bound 1 in
      let step =
        match choice with
        | 0 ->
            Natded.
              {
                formula = Prop.And (nth_formula i, nth_formula j);
                rule = And_intro (i, j);
              }
        | _ ->
            Natded.
              {
                formula = Prop.Or (nth_formula i, Prop.Var "extra");
                rule = Or_intro_left i;
              }
      in
      extend (step :: proof) (k - 1)
  in
  extend (List.rev premises) n_steps

let generated_always_well_formed =
  QCheck.Test.make ~name:"generation yields well-formed GSN" ~count:100
    (QCheck.make gen_proof) (fun proof ->
      match Natded.check proof with
      | Error _ -> false
      | Ok c ->
          let s = Proofgen.generate c in
          let a = Proofgen.abstract s in
          Wellformed.is_well_formed s
          && Wellformed.is_well_formed a
          && Proofgen.node_count a <= Proofgen.node_count s
          && Structure.roots a = Structure.roots s)

(* --- Confidence --- *)

let uniform_trust t (_ : Evidence.t) = t

let test_confidence_on_generated () =
  let c = Confidence.root_confidence ~trust:(uniform_trust 1.0) generated in
  Alcotest.(check (float 1e-9)) "full trust gives 1" 1.0 c;
  let c0 = Confidence.root_confidence ~trust:(uniform_trust 0.0) generated in
  Alcotest.(check (float 1e-9)) "no trust gives 0" 0.0 c0;
  let ch = Confidence.root_confidence ~trust:(uniform_trust 0.9) generated in
  Alcotest.(check bool) "partial trust strictly between" true
    (ch > 0.0 && ch < 1.0)

let sample_structure =
  Structure.of_nodes
    ~links:
      [
        (Structure.Supported_by, "G1", "S1");
        (Structure.Supported_by, "S1", "G2");
        (Structure.Supported_by, "S1", "G3");
        (Structure.Supported_by, "G2", "Sn1");
        (Structure.Supported_by, "G3", "Sn2");
      ]
    ~evidence:
      [
        Evidence.make ~id:(Id.of_string "E1") ~kind:Evidence.Test_results "tests";
        Evidence.make ~id:(Id.of_string "E2") ~kind:Evidence.Analysis "analysis";
      ]
    [
      Node.goal "G1" "system is safe";
      Node.strategy "S1" "argue over hazards";
      Node.goal "G2" "hazard 1 is managed";
      Node.goal "G3" "hazard 2 is managed";
      Node.solution ~evidence:"E1" "Sn1" "test results";
      Node.solution ~evidence:"E2" "Sn2" "analysis results";
    ]

let test_noisy_and_behaviour () =
  let trust ev =
    if Id.to_string ev.Evidence.id = "E1" then 0.8 else 0.5
  in
  let c = Confidence.root_confidence ~trust sample_structure in
  (* Root <- strategy(noisy-AND of 0.8 and 0.5) = 0.4. *)
  Alcotest.(check (float 1e-9)) "product" 0.4 c

let test_tracing () =
  let impacted =
    Confidence.impact_by_tracing sample_structure (Id.of_string "E1")
  in
  Alcotest.(check (list string))
    "path to root" [ "G2"; "S1"; "G1" ]
    (List.map Id.to_string impacted);
  Alcotest.(check (list string)) "unknown evidence" []
    (List.map Id.to_string
       (Confidence.impact_by_tracing sample_structure (Id.of_string "Ex")))

let test_sensitivity () =
  let trust = uniform_trust 0.8 in
  let s1 = Confidence.sensitivity ~trust sample_structure (Id.of_string "E1") in
  (* Baseline 0.64; dropping either evidence zeroes the strategy. *)
  Alcotest.(check (float 1e-9)) "drop to zero" 0.64 s1

let test_probing () =
  (* Rushby's what-if on the Haley proof: premise d->y is load-bearing,
     and so are the others in the cone. *)
  Alcotest.(check bool) "d->y load-bearing" false
    (Confidence.probe_premise checked (p "d -> y"));
  let lb = Confidence.load_bearing_premises checked in
  Alcotest.(check int) "all three load-bearing" 3 (List.length lb)

let test_probe_counterexample () =
  (* Retracting d->y breaks d->h; the countermodel must satisfy the
     remaining premises and refute the conclusion. *)
  (match Confidence.probe_counterexample checked (p "d -> y") with
  | None -> Alcotest.fail "expected a countermodel"
  | Some model ->
      let v x = match List.assoc_opt x model with Some b -> b | None -> true in
      Alcotest.(check bool) "remaining premises hold" true
        (List.for_all (Prop.eval v)
           (List.filter
              (fun q -> not (Prop.equal q (p "d -> y")))
              checked.Natded.premises));
      Alcotest.(check bool) "conclusion refuted" false
        (Prop.eval v checked.Natded.conclusion));
  (* A premise whose retraction is harmless yields no countermodel. *)
  let proof =
    Natded.
      [
        { formula = p "a"; rule = Premise };
        { formula = p "b"; rule = Premise };
        { formula = p "a & b"; rule = And_intro (1, 2) };
        { formula = p "a | b"; rule = Or_intro_left 1 };
      ]
  in
  let c = Result.get_ok (Natded.check proof) in
  Alcotest.(check bool) "no countermodel for redundant premise" true
    (Confidence.probe_counterexample c (p "b") = None)

let test_probing_redundant_premise () =
  let proof =
    Natded.
      [
        { formula = p "a"; rule = Premise };
        { formula = p "a -> b"; rule = Premise };
        { formula = p "b -> a"; rule = Premise };
        { formula = p "b"; rule = Imp_elim (2, 1) };
        { formula = p "a"; rule = Imp_elim (3, 4) };
      ]
  in
  let c = Result.get_ok (Natded.check proof) in
  (* Conclusion a; premise a alone suffices, so the implications are not
     load-bearing... removing premise a still lets nothing conclude a?
     With premises {a->b, b->a} alone, a does not follow; with {a, b->a}
     (removing a->b), a still follows.  So exactly premise a is
     load-bearing. *)
  let lb = Confidence.load_bearing_premises c in
  Alcotest.(check (list string))
    "only a" [ "a" ]
    (List.map Prop.to_string lb)

let () =
  Alcotest.run "argus-proofgen"
    [
      ( "generation",
        [
          Alcotest.test_case "well-formed" `Quick test_generated_is_well_formed;
          Alcotest.test_case "root is conclusion" `Quick
            test_generated_root_is_conclusion;
          Alcotest.test_case "unused premise excluded" `Quick
            test_unused_premise_excluded;
          Alcotest.test_case "premises get solutions" `Quick
            test_premises_get_solutions;
          Alcotest.test_case "goal texts are propositions" `Quick
            test_goal_texts_are_propositions;
          QCheck_alcotest.to_alcotest generated_always_well_formed;
        ] );
      ( "abstraction",
        [
          Alcotest.test_case "shrinks" `Quick test_abstract_shrinks;
          Alcotest.test_case "idempotent" `Quick test_abstract_idempotent;
        ] );
      ( "confidence",
        [
          Alcotest.test_case "generated argument" `Quick
            test_confidence_on_generated;
          Alcotest.test_case "noisy-and" `Quick test_noisy_and_behaviour;
          Alcotest.test_case "tracing" `Quick test_tracing;
          Alcotest.test_case "sensitivity" `Quick test_sensitivity;
          Alcotest.test_case "probing" `Quick test_probing;
          Alcotest.test_case "probe counterexample" `Quick
            test_probe_counterexample;
          Alcotest.test_case "redundant premise" `Quick
            test_probing_redundant_premise;
        ] );
    ]
