open Argus_survey

(* --- The encoded papers --- *)

let test_twenty_selected () =
  Alcotest.(check int) "twenty papers" 20 (List.length Paper.selected)

let test_keys_unique () =
  let keys = List.map (fun p -> p.Paper.key) Paper.selected in
  Alcotest.(check int) "unique keys" (List.length keys)
    (List.length (List.sort_uniq String.compare keys))

let test_reference_numbers () =
  (* References 6-20, 22-25 and 39 (Sokolsky), per the paper. *)
  let refs =
    List.sort compare (List.map (fun p -> p.Paper.reference) Paper.selected)
  in
  let expected =
    List.sort compare
      ([ 6; 7; 8; 9; 10; 11; 12; 13; 14; 15; 16; 17; 18; 19; 20 ]
      @ [ 22; 23; 24; 25; 39 ])
  in
  Alcotest.(check (list int)) "reference numbers" expected refs

let test_find () =
  Alcotest.(check bool) "finds rushby2010" true (Paper.find "rushby2010" <> None);
  Alcotest.(check bool) "missing key" true (Paper.find "nobody1999" = None)

(* --- The derived counts (Sections IV-VI) --- *)

let test_all_reported_counts () =
  List.iter
    (fun (what, computed, reported) ->
      if computed <> reported then
        Alcotest.failf "%s: computed %d, paper reports %d" what computed
          reported)
    (Queries.report ())

let test_subset_relation () =
  (* The four mentioning mechanical verification are among the eleven. *)
  let eleven = Queries.proposing_symbolic_deductive_content () in
  List.iter
    (fun p ->
      if not (List.memq p eleven) then
        Alcotest.failf "%s not in the eleven" p.Paper.key)
    (Queries.mentioning_mechanical_verification ())

let test_specific_memberships () =
  let keys l = List.map (fun p -> p.Paper.key) l in
  let mech = keys (Queries.implying_mechanical_benefit ()) in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " implies benefit") true (List.mem k mech))
    [ "brunel2012"; "denney2013patterns"; "haley2008"; "matsuno2011";
      "matsuno2014"; "sokolsky2011" ];
  let informal_first = keys (Queries.informal_first_then_formalise ()) in
  List.iter
    (fun k -> Alcotest.(check bool) (k ^ " informal-first") true
        (List.mem k informal_first))
    [ "brunel2012"; "rushby2010"; "tun2012" ];
  let hyp = keys (Queries.acknowledging_hypothesis ()) in
  Alcotest.(check bool) "only Rushby acknowledges" true
    (List.sort compare hyp = [ "rushby2010"; "rushby2013" ])

(* --- The selection pipeline (Table I) --- *)

let table = Selection.table1 Selection.corpus

let row lib =
  List.find (fun r -> r.Selection.library = lib) table.Selection.rows

let test_table1_per_library () =
  let check lib safety security =
    let r = row lib in
    Alcotest.(check int)
      (Selection.library_to_string lib ^ " safety")
      safety r.Selection.safety;
    Alcotest.(check int)
      (Selection.library_to_string lib ^ " security")
      security r.Selection.security
  in
  check Selection.IEEE_Xplore 12 13;
  check Selection.ACM_DL 17 7;
  check Selection.Springer_Link 24 2;
  check Selection.Google_Scholar 8 1

let test_table1_uniques () =
  Alcotest.(check int) "72 unique" 72 table.Selection.unique_total;
  Alcotest.(check int) "54 safety" 54 table.Selection.unique_safety;
  Alcotest.(check int) "23 security" 23 table.Selection.unique_security

let test_phase2_yields_twenty () =
  Alcotest.(check int) "twenty" 20
    (Selection.selected_after_phase2 Selection.corpus)

let test_phase1_criteria () =
  (* Every phase-1 reject violates exactly one criterion; the pipeline
     honours each. *)
  let rejected =
    List.filter
      (fun c -> not (Selection.phase1_selects c))
      Selection.corpus
  in
  Alcotest.(check int) "24 rejects (3 per library and term)" 24
    (List.length rejected);
  List.iter
    (fun c ->
      let violations =
        (if not c.Selection.hints_assurance_argument then 1 else 0)
        + (if c.Selection.about_evidence_item_only then 1 else 0)
        + if c.Selection.formal_in_other_sense then 1 else 0
      in
      Alcotest.(check int) "exactly one violation" 1 violations)
    rejected

let test_phase2_subset_of_phase1 () =
  let p1 = Selection.run_phase1 Selection.corpus in
  let p2 = Selection.run_phase2 Selection.corpus in
  List.iter
    (fun c ->
      if not (List.memq c p1) then Alcotest.fail "phase2 not within phase1")
    p2

let test_surveyed_titles_appear () =
  (* The twenty phase-2 survivors carry the titles of the encoded
     surveyed papers. *)
  let p2 = Selection.run_phase2 Selection.corpus in
  let titles = List.map (fun c -> c.Selection.title) p2 in
  List.iter
    (fun p ->
      if not (List.mem p.Paper.title titles) then
        Alcotest.failf "surveyed paper missing from phase 2: %s" p.Paper.key)
    Paper.selected

(* --- Report --- *)

let test_report_groups () =
  let gs = Report.groups () in
  (* 12 subsection groups; union covers all twenty papers. *)
  Alcotest.(check int) "twelve groups" 12 (List.length gs);
  Alcotest.(check int) "covers all twenty" 20
    (List.fold_left (fun acc (_, ms) -> acc + List.length ms) 0 gs);
  Alcotest.(check string) "first group"
    "Automatically-generated arguments" (fst (List.hd gs))

let test_report_renders_every_paper () =
  let text = Format.asprintf "%a" Report.pp_all () in
  List.iter
    (fun p ->
      let tag = Printf.sprintf "[%d]" p.Paper.reference in
      let nh = String.length text and nn = String.length tag in
      let rec go i =
        if i + nn > nh then false
        else String.sub text i nn = tag || go (i + 1)
      in
      if not (go 0) then
        Alcotest.failf "report omits %s" p.Paper.key)
    Paper.selected

let test_pp_table1 () =
  let s = Format.asprintf "%a" Selection.pp_table1 table in
  Alcotest.(check bool) "mentions Springer" true
    (let needle = "Springer" in
     let nh = String.length s and nn = String.length needle in
     let rec go i =
       if i + nn > nh then false
       else String.sub s i nn = needle || go (i + 1)
     in
     go 0)

let () =
  Alcotest.run "argus-survey"
    [
      ( "papers",
        [
          Alcotest.test_case "twenty selected" `Quick test_twenty_selected;
          Alcotest.test_case "keys unique" `Quick test_keys_unique;
          Alcotest.test_case "reference numbers" `Quick test_reference_numbers;
          Alcotest.test_case "find" `Quick test_find;
        ] );
      ( "queries",
        [
          Alcotest.test_case "all counts match the paper" `Quick
            test_all_reported_counts;
          Alcotest.test_case "mechanical subset of symbolic" `Quick
            test_subset_relation;
          Alcotest.test_case "specific memberships" `Quick
            test_specific_memberships;
        ] );
      ( "selection",
        [
          Alcotest.test_case "Table I per library" `Quick
            test_table1_per_library;
          Alcotest.test_case "Table I uniques" `Quick test_table1_uniques;
          Alcotest.test_case "phase 2 yields twenty" `Quick
            test_phase2_yields_twenty;
          Alcotest.test_case "phase 1 criteria" `Quick test_phase1_criteria;
          Alcotest.test_case "phase 2 within phase 1" `Quick
            test_phase2_subset_of_phase1;
          Alcotest.test_case "surveyed titles appear" `Quick
            test_surveyed_titles_appear;
          Alcotest.test_case "table rendering" `Quick test_pp_table1;
        ] );
      ( "report",
        [
          Alcotest.test_case "groups" `Quick test_report_groups;
          Alcotest.test_case "renders every paper" `Quick
            test_report_renders_every_paper;
        ] );
    ]
