open Argus_toulmin
module Prop = Argus_logic.Prop
module Natded = Argus_logic.Natded
module Diagnostic = Argus_core.Diagnostic

(* The paper's Section III.K inner-argument example. *)
let haley_inner_text =
  {|
    given grounds G2: "Valid credentials are given only to HR members"
    warranted by (
      given grounds G3: "Credentials are given in person"
      warranted by G4: "Credential administrators are honest and reliable"
      thus claim C1: "Credential administration is correct")
    thus claim P2: "HR credentials provided --> HR member"
    rebutted by R1: "HR member is dishonest"
  |}

let haley_inner = Toulmin.of_string_exn haley_inner_text

let test_parse_haley () =
  Alcotest.(check int) "one ground" 1 (List.length haley_inner.Toulmin.grounds);
  Alcotest.(check string) "claim label" "P2" haley_inner.Toulmin.claim.Toulmin.label;
  Alcotest.(check int) "one rebuttal" 1 (List.length haley_inner.Toulmin.rebuttals);
  (match haley_inner.Toulmin.warrant with
  | Some (Toulmin.Warrant_argument nested) ->
      Alcotest.(check string) "nested claim" "C1"
        nested.Toulmin.claim.Toulmin.label
  | _ -> Alcotest.fail "expected a nested warrant argument");
  Alcotest.(check int) "depth 2" 2 (Toulmin.depth haley_inner);
  Alcotest.(check (list string))
    "labels in document order"
    [ "G2"; "G3"; "G4"; "C1"; "P2"; "R1" ]
    (Toulmin.labels haley_inner)

let test_roundtrip_haley () =
  let printed = Toulmin.to_string haley_inner in
  let reparsed = Toulmin.of_string_exn printed in
  Alcotest.(check bool) "round-trip" true (reparsed = haley_inner)

let test_multiple_grounds () =
  let a =
    Toulmin.of_string_exn
      {|given grounds G1: "first", G2: "second"
        warranted by W1: "together they suffice"
        thus claim C1: "the claim"|}
  in
  Alcotest.(check int) "two grounds" 2 (List.length a.Toulmin.grounds);
  Alcotest.(check (list Alcotest.string)) "no issues" []
    (List.map (fun d -> d.Diagnostic.code) (Toulmin.check a))

let test_parse_errors () =
  List.iter
    (fun s ->
      match Toulmin.of_string s with
      | Ok _ -> Alcotest.failf "should not parse: %S" s
      | Error _ -> ())
    [
      "";
      {|thus claim C: "c"|};
      {|given grounds G1: "g" thus claim|};
      {|given grounds G1 thus claim C: "c"|};
      {|given grounds G1: "g" thus claim C: "c" extra|};
      {|given grounds (given grounds G: "g" thus claim C: "c" thus claim D: "d"|};
    ]

let test_check_duplicate_label () =
  let a =
    Toulmin.of_string_exn
      {|given grounds X: "g" thus claim X: "c"|}
  in
  let codes = List.map (fun d -> d.Diagnostic.code) (Toulmin.check a) in
  Alcotest.(check bool) "duplicate flagged" true
    (List.mem "toulmin/duplicate-label" codes)

let test_check_empty_text () =
  let a = Toulmin.of_string_exn {|given grounds G: "  " thus claim C: "c"|} in
  let codes = List.map (fun d -> d.Diagnostic.code) (Toulmin.check a) in
  Alcotest.(check bool) "empty text flagged" true
    (List.mem "toulmin/empty-text" codes)

let test_check_unwarranted () =
  let a =
    Toulmin.of_string_exn
      {|given grounds G1: "a", G2: "b" thus claim C: "c"|}
  in
  let codes = List.map (fun d -> d.Diagnostic.code) (Toulmin.check a) in
  Alcotest.(check bool) "unwarranted flagged" true
    (List.mem "toulmin/unwarranted" codes)

let test_check_self_support () =
  let a =
    Toulmin.of_string_exn
      {|given grounds G1: "the claim holds",
        (given grounds G2: "weak evidence" thus claim C2: "the claim holds")
        warranted by W: "w"
        thus claim C: "top"|}
  in
  let codes = List.map (fun d -> d.Diagnostic.code) (Toulmin.check a) in
  Alcotest.(check bool) "circularity flagged" true
    (List.mem "toulmin/self-support" codes)

let test_haley_is_clean () =
  Alcotest.(check (list Alcotest.string)) "no findings" []
    (List.map (fun d -> d.Diagnostic.code) (Toulmin.check haley_inner))

let test_make_requires_grounds () =
  Alcotest.check_raises "no grounds"
    (Invalid_argument "Toulmin.make: no grounds") (fun () ->
      ignore (Toulmin.make ~grounds:[] (Toulmin.element "C" "c")))

(* --- Round-trip property --- *)

let gen_element =
  QCheck.Gen.(
    let* l = int_range 0 30 in
    let* t = string_size ~gen:(char_range 'a' 'z') (int_range 1 12) in
    return (Toulmin.element (Printf.sprintf "L%d" l) t))

let gen_argument =
  let open QCheck.Gen in
  fix
    (fun self depth ->
      let* n_grounds = int_range 1 3 in
      let* grounds =
        flatten_l
          (List.init n_grounds (fun _ ->
               if depth <= 0 then
                 map (fun e -> Toulmin.Ground_statement e) gen_element
               else
                 frequency
                   [
                     (3, map (fun e -> Toulmin.Ground_statement e) gen_element);
                     (1, map (fun a -> Toulmin.Ground_argument a) (self (depth - 1)));
                   ]))
      in
      let* warrant =
        if depth <= 0 then
          map (fun e -> Some (Toulmin.Warrant_statement e)) gen_element
        else
          frequency
            [
              (1, return None);
              (2, map (fun e -> Some (Toulmin.Warrant_statement e)) gen_element);
              ( 1,
                map (fun a -> Some (Toulmin.Warrant_argument a)) (self (depth - 1))
              );
            ]
      in
      let* claim = gen_element in
      let* rebuttals = list_size (int_bound 2) gen_element in
      return { Toulmin.grounds; warrant; claim; rebuttals })
    2

let roundtrip_property =
  QCheck.Test.make ~name:"pp/of_string round-trip" ~count:200
    (QCheck.make ~print:Toulmin.to_string gen_argument) (fun a ->
      match Toulmin.of_string (Toulmin.to_string a) with
      | Ok a' -> a = a'
      | Error _ -> false)

let size_counts_elements =
  QCheck.Test.make ~name:"size equals label count" ~count:200
    (QCheck.make gen_argument) (fun a ->
      Toulmin.size a = List.length (Toulmin.labels a))

(* --- Satisfaction arguments --- *)

let p = Prop.of_string_exn

(* Haley 2008 outer proof: I->V, C->H, Y->V&C, D->Y, D |- D->H. *)
let outer_proof =
  Natded.
    [
      { formula = p "i -> v"; rule = Premise };
      { formula = p "c -> h"; rule = Premise };
      { formula = p "y -> v & c"; rule = Premise };
      { formula = p "d -> y"; rule = Premise };
      { formula = p "d"; rule = Premise };
      { formula = p "y"; rule = Imp_elim (4, 5) };
      { formula = p "v & c"; rule = Imp_elim (3, 6) };
      { formula = p "v"; rule = And_elim_left 7 };
      { formula = p "c"; rule = And_elim_right 7 };
      { formula = p "h"; rule = Imp_elim (2, 9) };
      { formula = p "d -> h"; rule = Imp_intro (5, 10) };
    ]

let simple_inner text =
  Toulmin.of_string_exn
    (Printf.sprintf
       {|given grounds G: "observation" warranted by W: "domain knowledge" thus claim C: "%s"|}
       text)

(* Note a faithful quirk of the original: premise 1 (I -> V) is stated
   in Haley et al.'s proof but never cited by any step, so it is not a
   trust assumption of the conclusion.  Only the three premises the
   proof actually uses need inner arguments. *)
let full_satisfaction =
  {
    Satisfaction.requirement = p "d -> h";
    outer = outer_proof;
    inner =
      [
        (p "c -> h", simple_inner "credentials imply HR membership");
        (p "y -> v & c", simple_inner "tokens carry valid credentials");
        (p "d -> y", simple_inner "display requires a token");
      ];
  }

let test_satisfaction_ok () =
  let ds = Satisfaction.check full_satisfaction in
  Alcotest.(check (list Alcotest.string)) "clean" []
    (List.map (fun d -> d.Diagnostic.code) ds);
  Alcotest.(check bool) "satisfied" true
    (Satisfaction.is_satisfied full_satisfaction)

let test_satisfaction_trust_assumptions () =
  let tas = Satisfaction.trust_assumptions full_satisfaction in
  (* D was discharged by the Conclusion step and I -> V is never cited;
     three premises remain. *)
  Alcotest.(check int) "three assumptions" 3 (List.length tas);
  Alcotest.(check bool) "d discharged" true
    (not (List.exists (Prop.equal (p "d")) tas));
  Alcotest.(check bool) "unused premise not an assumption" true
    (not (List.exists (Prop.equal (p "i -> v")) tas))

let test_satisfaction_missing_inner () =
  let broken =
    { full_satisfaction with Satisfaction.inner = List.tl full_satisfaction.Satisfaction.inner }
  in
  let codes =
    List.map (fun d -> d.Diagnostic.code) (Satisfaction.check broken)
  in
  Alcotest.(check bool) "unsupported premise" true
    (List.mem "satisfaction/unsupported-premise" codes);
  Alcotest.(check bool) "not satisfied" false (Satisfaction.is_satisfied broken)

let test_satisfaction_wrong_conclusion () =
  let broken = { full_satisfaction with Satisfaction.requirement = p "d -> v" } in
  let codes =
    List.map (fun d -> d.Diagnostic.code) (Satisfaction.check broken)
  in
  Alcotest.(check bool) "wrong conclusion" true
    (List.mem "satisfaction/wrong-conclusion" codes)

let test_satisfaction_rebutted () =
  let rebutted =
    Toulmin.of_string_exn
      {|given grounds G: "g" thus claim C: "c" rebutted by R: "the admin might be dishonest"|}
  in
  let with_rebuttal =
    {
      full_satisfaction with
      Satisfaction.inner =
        (p "c -> h", rebutted) :: List.tl full_satisfaction.Satisfaction.inner;
    }
  in
  let codes =
    List.map (fun d -> d.Diagnostic.code) (Satisfaction.check with_rebuttal)
  in
  Alcotest.(check bool) "rebutted assumption warned" true
    (List.mem "satisfaction/rebutted-assumption" codes);
  Alcotest.(check bool) "warnings do not block satisfaction" true
    (Satisfaction.is_satisfied with_rebuttal)

let test_satisfaction_dangling () =
  let extra =
    {
      full_satisfaction with
      Satisfaction.inner =
        (p "unrelated", simple_inner "spurious") :: full_satisfaction.Satisfaction.inner;
    }
  in
  let codes = List.map (fun d -> d.Diagnostic.code) (Satisfaction.check extra) in
  Alcotest.(check bool) "dangling inner warned" true
    (List.mem "satisfaction/dangling-inner" codes)

let test_satisfaction_invalid_outer () =
  let bad_proof =
    Natded.[ { formula = p "h"; rule = Imp_elim (1, 1) } ]
  in
  let broken =
    { full_satisfaction with Satisfaction.outer = bad_proof }
  in
  let codes =
    List.map (fun d -> d.Diagnostic.code) (Satisfaction.check broken)
  in
  Alcotest.(check bool) "outer invalid" true
    (List.mem "satisfaction/outer-invalid" codes)

(* --- GSN conversion --- *)

let test_to_gsn_haley () =
  let s = To_gsn.convert haley_inner in
  Alcotest.(check bool) "well-formed" true
    (Argus_gsn.Wellformed.is_well_formed s);
  (* One root: the outer claim. *)
  (match Argus_gsn.Structure.roots s with
  | [ root ] ->
      let n = Argus_gsn.Structure.find_exn root s in
      Alcotest.(check string) "root is P2's claim"
        "HR credentials provided --> HR member"
        n.Argus_gsn.Node.text
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots));
  (* The rebuttal appears as an assumption. *)
  Alcotest.(check bool) "rebuttal recorded" true
    (List.exists
       (fun n ->
         n.Argus_gsn.Node.node_type = Argus_gsn.Node.Assumption)
       (Argus_gsn.Structure.nodes s))

let to_gsn_always_well_formed =
  QCheck.Test.make ~name:"conversion yields well-formed GSN" ~count:100
    (QCheck.make ~print:Toulmin.to_string gen_argument) (fun arg ->
      Argus_gsn.Wellformed.is_well_formed (To_gsn.convert arg))

let () =
  Alcotest.run "argus-toulmin"
    [
      ( "notation",
        [
          Alcotest.test_case "parse Haley example" `Quick test_parse_haley;
          Alcotest.test_case "round-trip Haley example" `Quick
            test_roundtrip_haley;
          Alcotest.test_case "multiple grounds" `Quick test_multiple_grounds;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          QCheck_alcotest.to_alcotest roundtrip_property;
          QCheck_alcotest.to_alcotest size_counts_elements;
        ] );
      ( "checks",
        [
          Alcotest.test_case "duplicate label" `Quick test_check_duplicate_label;
          Alcotest.test_case "empty text" `Quick test_check_empty_text;
          Alcotest.test_case "unwarranted" `Quick test_check_unwarranted;
          Alcotest.test_case "self support" `Quick test_check_self_support;
          Alcotest.test_case "Haley example is clean" `Quick test_haley_is_clean;
          Alcotest.test_case "make requires grounds" `Quick
            test_make_requires_grounds;
        ] );
      ( "satisfaction",
        [
          Alcotest.test_case "full framework checks" `Quick test_satisfaction_ok;
          Alcotest.test_case "trust assumptions" `Quick
            test_satisfaction_trust_assumptions;
          Alcotest.test_case "missing inner" `Quick test_satisfaction_missing_inner;
          Alcotest.test_case "wrong conclusion" `Quick
            test_satisfaction_wrong_conclusion;
          Alcotest.test_case "rebutted assumption" `Quick test_satisfaction_rebutted;
          Alcotest.test_case "dangling inner" `Quick test_satisfaction_dangling;
          Alcotest.test_case "invalid outer" `Quick test_satisfaction_invalid_outer;
        ] );
      ( "to-gsn",
        [
          Alcotest.test_case "Haley inner argument" `Quick test_to_gsn_haley;
          QCheck_alcotest.to_alcotest to_gsn_always_well_formed;
        ] );
    ]
