A multi-module file gets cross-module checking:

  $ argus check modular.arg
  0 error(s), 0 warning(s), 0 info

Breaking the away-goal reference is caught:

  $ sed 's/away-goal(Powertrain)/away-goal(Gearbox)/' modular.arg > broken_modular.arg
  $ argus check broken_modular.arg
  error [modular/unknown-module] [module Vehicle] away goal cites unknown module Gearbox (PG1, Gearbox)
  1 error(s), 0 warning(s), 0 info
  [1]

Canonical formatting round-trips:

  $ argus format modular.arg > formatted.arg
  $ argus format formatted.arg > formatted2.arg
  $ diff formatted.arg formatted2.arg

Equivocation candidates over a Horn program:

  $ argus equivocation desert_bank.pl
  bank occupies multiple predicate roles; check it means one thing
