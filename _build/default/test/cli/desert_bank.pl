% Figure 1 of the paper.
is_a(desert_bank, bank).
adjacent(bank, river).
adjacent(X, Y) :- is_a(X, Z), adjacent(Z, Y).
