Checking a textual natural-deduction proof and probing its premises:

  $ argus probe haley.nd
  proof checks; it proves (c -> h) & (y -> v & c) & (d -> y) -> d -> h
  
  what-if exploration (retract each premise):
    c -> h                         LOAD-BEARING; countermodel: y=true, v=true, c=true, d=true, h=false
    y -> v & c                     LOAD-BEARING; countermodel: c=false, h=false, d=true, y=true
    d -> y                         LOAD-BEARING; countermodel: c=false, h=false, y=false, v=true, d=true


A broken proof is rejected with the offending step:

  $ cat > bad.nd <<'EOF'
  > 1. a -> b premise
  > 2. b      premise
  > 3. a      detach 1 2
  > EOF
  $ argus probe bad.nd
  error [natded/rule-mismatch] step 3: Detach needs an implication and its antecedent, concluding the consequent
  1 error(s), 0 warning(s), 0 info
  [1]
