  $ argus check press.arg
  $ argus check broken.arg
  $ argus check broken.arg --ruleset denney-pai
  $ argus query press.arg 'has hazard'
  $ argus query press.arg 'hazard = "crush" | text ~ "restart"'
  $ argus query press.arg --trace 'hazard = "crush"'
  $ argus render press.arg --depth 0
  $ argus prove desert_bank.pl 'adjacent(desert_bank, river)'
  $ argus prove desert_bank.pl 'adjacent(river, desert_bank)'
  $ argus cae press.arg
  $ argus survey | head -9
