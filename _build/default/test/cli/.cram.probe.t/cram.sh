  $ argus probe haley.nd
  $ cat > bad.nd <<'EOF'
  > 1. a -> b premise
  > 2. b      premise
  > 3. a      detach 1 2
  > EOF
  $ argus probe bad.nd
