Exporting to JSON, re-importing, and measuring:

  $ argus export press.arg > press.json
  $ head -6 press.json
  {
    "nodes": [
      {
        "id": "G1",
        "type": "goal",
        "text": "The press is acceptably safe for operator use",

  $ argus import press.json
  [goal] G1: The press is acceptably safe for operator use
    ~ [context] C1: Single-operator workshops
    [strategy] S1: Argument over each identified hazard
      [goal] G2: Hazard: crush injury is acceptably managed
        [solution] Sn1: Interlock analysis results
      [goal] G3: Hazard: unexpected restart is acceptably managed
        [solution] Sn2: Two-hand control test results

  $ argus stats press.arg
  nodes 7 (goals 3, strategies 1, solutions 2, contextual 1, modular 0)
  links 6, depth 4, max fan-out 2, undeveloped 0
  evidence items 2 (test-results 1, analysis 1)
  formalised nodes 0 (0%), 36 words, reading ease 16

A corrupt JSON file is rejected:

  $ echo '{"nodes": [{"id": "1bad", "type": "goal", "text": "t"}]}' > bad.json
  $ argus import bad.json
  error [interchange/bad-id] invalid identifier "1bad"
  1 error(s), 0 warning(s), 0 info
  [1]
