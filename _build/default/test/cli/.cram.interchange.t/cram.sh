  $ argus export press.arg > press.json
  $ head -6 press.json
  $ argus import press.json
  $ argus stats press.arg
  $ echo '{"nodes": [{"id": "1bad", "type": "goal", "text": "t"}]}' > bad.json
  $ argus import bad.json
