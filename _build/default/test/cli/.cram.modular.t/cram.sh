  $ argus check modular.arg
  $ sed 's/away-goal(Powertrain)/away-goal(Gearbox)/' modular.arg > broken_modular.arg
  $ argus check broken_modular.arg
  $ argus format modular.arg > formatted.arg
  $ argus format formatted.arg > formatted2.arg
  $ diff formatted.arg formatted2.arg
  $ argus equivocation desert_bank.pl
