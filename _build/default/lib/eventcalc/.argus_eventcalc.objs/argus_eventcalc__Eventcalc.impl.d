lib/eventcalc/eventcalc.ml: Argus_logic Format List String
