lib/eventcalc/eventcalc.mli: Argus_logic Format
