module Term = Argus_logic.Term

type fluent = Term.t
type event = Term.t

type effect_axiom = {
  event : event;
  conditions : fluent list;
  initiates : fluent list;
  terminates : fluent list;
}

type narrative = (int * event) list

type t = {
  initially : fluent list;
  axioms : effect_axiom list;
  narrative : narrative;  (** Sorted by time. *)
  horizon : int;
}

let make ?(initially = []) ~axioms narrative =
  let narrative = List.sort (fun (a, _) (b, _) -> compare a b) narrative in
  let horizon =
    1 + List.fold_left (fun acc (t, _) -> max acc t) 0 narrative
  in
  { initially; axioms; narrative; horizon }

let horizon t = t.horizon

let happens_at t time =
  List.filter_map
    (fun (tm, e) -> if tm = time then Some e else None)
    t.narrative

(* Effects are conditional on the state when the event happens, so
   states are computed by forward simulation from time 0. *)
let effects_in sys state time =
  (* (initiated, terminated) fluents produced by occurrences at [time]
     given the [state] at that time. *)
  List.fold_left
    (fun (inits, terms) event ->
      List.fold_left
        (fun (inits, terms) ax ->
          if
            Term.equal ax.event event
            && List.for_all (fun c -> List.exists (Term.equal c) state)
                 ax.conditions
          then (ax.initiates @ inits, ax.terminates @ terms)
          else (inits, terms))
        (inits, terms) sys.axioms)
    ([], []) (happens_at sys time)

let state_set sys time =
  let rec step state t =
    if t >= time then state
    else
      let inits, terms = effects_in sys state t in
      let survived =
        List.filter (fun f -> not (List.exists (Term.equal f) terms)) state
      in
      let added =
        List.filter
          (fun f -> not (List.exists (Term.equal f) survived))
          inits
      in
      step (survived @ added) (t + 1)
  in
  step sys.initially 0

let holds_at sys time f = List.exists (Term.equal f) (state_set sys time)
let state_at sys time = state_set sys time

let availability sys ?(within = 1) ~after f =
  List.for_all
    (fun (time, e) ->
      if not (Term.equal e after) then true
      else
        let rec ok k =
          k <= within
          && (holds_at sys (time + k) f || ok (k + 1))
        in
        ok 1)
    sys.narrative

let denial sys ~when_not f =
  let rec go time =
    time > horizon sys
    || ((holds_at sys time when_not || not (holds_at sys time f))
       && go (time + 1))
  in
  go 0

let explanation sys time f =
  if not (holds_at sys time f) then []
  else
    (* Most recent occurrence strictly before [time] that initiated f
       (with conditions satisfied). *)
    let rec search t =
      if t < 0 then []
      else
        let inits, _ = effects_in sys (state_set sys t) t in
        if List.exists (Term.equal f) inits then
          List.filter_map
            (fun (tm, e) ->
              if tm = t then
                let initiated_by_e =
                  List.exists
                    (fun ax ->
                      Term.equal ax.event e
                      && List.exists (Term.equal f) ax.initiates
                      && List.for_all
                           (fun c -> holds_at sys t c)
                           ax.conditions)
                    sys.axioms
                in
                if initiated_by_e then Some (tm, e) else None
              else None)
            sys.narrative
        else search (t - 1)
    in
    search (time - 1)

let pp_timeline ppf sys =
  for time = 0 to horizon sys do
    let events = happens_at sys time in
    let state = state_at sys time in
    Format.fprintf ppf "t=%d  holds: {%s}" time
      (String.concat ", " (List.map Term.to_string state));
    if events <> [] then
      Format.fprintf ppf "  happens: {%s}"
        (String.concat ", " (List.map Term.to_string events));
    Format.fprintf ppf "@."
  done
