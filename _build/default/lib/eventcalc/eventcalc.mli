(** A discrete Event Calculus.

    Tun et al. (Section III.P of the paper) formalise privacy arguments
    into the Event Calculus so that "requirement satisfaction can be
    reasoned about": fluents like [SamePF(user, subject)] hold at times,
    events like [Tap(user, subject)] happen and initiate or terminate
    fluents.  This module is the discrete-time fragment their examples
    need: inertial fluents over integer time, [Initiates]/[Terminates]
    effect axioms with (ground, conjunctive) fluent preconditions, a
    narrative of event occurrences, and queries [holds_at] /
    [happens_at], plus the three property checks their paper names
    (information availability, denial, and explanation).

    Fluents and events are {!Argus_logic.Term} ground terms. *)

type fluent = Argus_logic.Term.t
type event = Argus_logic.Term.t

type effect_axiom = {
  event : event;
  conditions : fluent list;
      (** Fluents that must hold when the event happens. *)
  initiates : fluent list;
  terminates : fluent list;
}

type narrative = (int * event) list
(** Event occurrences at integer times; order irrelevant. *)

type t

val make :
  ?initially:fluent list -> axioms:effect_axiom list -> narrative -> t

val horizon : t -> int
(** Latest narrative time + 1. *)

val happens_at : t -> int -> event list

val holds_at : t -> int -> fluent -> bool
(** Inertia: a fluent holds at [t] iff it held initially and was never
    terminated before [t], or some occurrence at [t' < t] initiated it
    (with its axiom's conditions holding at [t']) and no later
    occurrence before [t] terminated it.  An event at time [t] affects
    times [> t]. *)

val state_at : t -> int -> fluent list
(** All fluents holding at the time, from the (finite) set of fluents
    mentioned anywhere in the system. *)

(** The three privacy-argument checks of the surveyed paper. *)

val availability : t -> ?within:int -> after:event -> fluent -> bool
(** Information availability: after every occurrence of [after], the
    fluent holds within [within] steps (default 1) — e.g. a location
    query is answered after a tap. *)

val denial : t -> when_not:fluent -> fluent -> bool
(** Denial: at every time where [when_not] does not hold, the fluent
    does not hold either — e.g. location is never disclosed to
    non-friends. *)

val explanation : t -> int -> fluent -> (int * event) list
(** Explanation: the occurrences that causally support the fluent
    holding at the time — the initiating occurrence (most recent one)
    if the fluent holds by initiation, [] if it holds initially or does
    not hold. *)

val pp_timeline : Format.formatter -> t -> unit
(** One line per time step: events happening, fluents holding. *)
