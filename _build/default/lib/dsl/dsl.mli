(** The textual assurance-case language.

    A whole case — ontology, evidence register and argument structure —
    in one human-writable file:

    {v
    case "Braking controller safety" {
      enum severity { catastrophic hazardous major minor }
      attr hazard (string, severity)

      evidence E1 analysis "Worst-case timing analysis"
        source "report T-42" strength statistical

      goal G1 "The controller is acceptably safe" {
        formal "safe_ctrl"
        meta "hazard \"H1\" catastrophic"
        in-context-of C1
        supported-by S1
      }
      strategy S1 "Argue over each hazard" { supported-by G2 }
      goal G2 "Hazard H1 is mitigated" { supported-by Sn1 }
      solution Sn1 "Timing analysis results" { evidence E1 }
      context C1 "Motorway driving only"
    }
    v}

    Node bodies may also carry [undeveloped], [uninstantiated] or
    [undeveloped-uninstantiated] marks.  Away goals, module references
    and contracts are written [away-goal(M) AG1 "text"], [module(M) ...],
    [contract(M) ...].  Comments run from [//] to end of line. *)

type case = {
  module_name : Argus_core.Id.t option;
      (** Optional module identifier, written between [case] and the
          title: [case Vehicle "Vehicle safety" { ... }].  Required for
          the cases of a multi-module file. *)
  title : string;
  ontology : Argus_gsn.Metadata.ontology;
  structure : Argus_gsn.Structure.t;
}

val parse :
  ?filename:string -> string -> (case, Argus_core.Diagnostic.t list) result
(** Syntax errors carry code ["dsl/syntax"] and a source span; semantic
    errors found while building the case carry ["dsl/duplicate-id"],
    ["dsl/bad-formula"], ["dsl/bad-annotation"],
    ["dsl/bad-evidence-kind"], ["dsl/bad-strength"] or
    ["dsl/duplicate-enum"]. *)

val parse_exn : ?filename:string -> string -> case

val print : case -> string
(** Canonical rendering; [parse (print c)] re-reads an equal case. *)

val validate_metadata : case -> Argus_core.Diagnostic.t list
(** Every node's annotations checked against the case's ontology. *)

val parse_collection :
  ?filename:string ->
  string ->
  (case list, Argus_core.Diagnostic.t list) result
(** Parses a file containing one or more [case] blocks — a modular
    assurance case, one module per block. *)

val to_modular :
  case list -> (Argus_gsn.Modular.t, Argus_core.Diagnostic.t list) result
(** Builds a module collection.  Every case must carry a module name
    when there is more than one (["dsl/unnamed-module"]); duplicate
    module names are ["dsl/duplicate-module"].  A single anonymous case
    becomes module ["Main"]. *)
