lib/dsl/dsl.ml: Argus_core Argus_gsn Argus_logic Buffer Format Hashtbl List Printf String
