lib/dsl/dsl.mli: Argus_core Argus_gsn
