(** Descriptive metrics of an argument structure.

    The cost/benefit questions of Section VI turn on measurable
    properties of arguments: how big they are (formalisation effort
    scales with node count), how readable their prose is (the audience
    experiment), and how much of them is formalised (Rushby's partial
    formalisation).  These metrics feed the experiment harness and the
    [argus stats] command. *)

type t = {
  nodes : int;
  goals : int;
  strategies : int;
  solutions : int;
  contextual : int;  (** Context, assumption, justification. *)
  modular : int;  (** Away goals, module references, contracts. *)
  links : int;
  depth : int;
      (** Longest [Supported_by] path from a root, counting nodes; 0 for
          an empty structure.  Cycles are cut. *)
  max_fanout : int;  (** Largest [Supported_by] out-degree. *)
  undeveloped : int;
  evidence_items : int;
  evidence_by_kind : (Argus_core.Evidence.kind * int) list;
      (** Only kinds that occur. *)
  formalised_nodes : int;  (** Nodes carrying a [formal] annotation. *)
  formalisation_ratio : float;  (** Formalised / total; 0 when empty. *)
  words : int;  (** Total words of node text. *)
  reading_ease : float;
      (** Flesch score of the concatenated node texts; 100 when empty. *)
}

val measure : Structure.t -> t
val pp : Format.formatter -> t -> unit
