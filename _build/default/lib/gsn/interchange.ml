module Id = Argus_core.Id
module Json = Argus_core.Json
module Diagnostic = Argus_core.Diagnostic
module Evidence = Argus_core.Evidence
module Prop = Argus_logic.Prop

let status_to_string = function
  | Node.Developed -> "developed"
  | Node.Undeveloped -> "undeveloped"
  | Node.Uninstantiated -> "uninstantiated"
  | Node.Undeveloped_uninstantiated -> "undeveloped-uninstantiated"

let status_of_string = function
  | "developed" -> Some Node.Developed
  | "undeveloped" -> Some Node.Undeveloped
  | "uninstantiated" -> Some Node.Uninstantiated
  | "undeveloped-uninstantiated" -> Some Node.Undeveloped_uninstantiated
  | _ -> None

let node_to_json n =
  let base =
    [
      ("id", Json.Str (Id.to_string n.Node.id));
      ("type", Json.Str (Node.type_to_string n.Node.node_type));
      ("text", Json.Str n.Node.text);
      ("status", Json.Str (status_to_string n.Node.status));
    ]
  in
  let formal =
    match n.Node.formal with
    | Some f -> [ ("formal", Json.Str (Prop.to_string f)) ]
    | None -> []
  in
  let annotations =
    match n.Node.annotations with
    | [] -> []
    | anns ->
        [
          ( "annotations",
            Json.List
              (List.map
                 (fun a ->
                   Json.Str (Format.asprintf "%a" Metadata.pp_annotation a))
                 anns) );
        ]
  in
  let evidence =
    match n.Node.evidence with
    | Some e -> [ ("evidence", Json.Str (Id.to_string e)) ]
    | None -> []
  in
  Json.Obj (base @ formal @ annotations @ evidence)

let link_to_json (kind, src, dst) =
  Json.Obj
    [
      ( "kind",
        Json.Str
          (match kind with
          | Structure.Supported_by -> "supported-by"
          | Structure.In_context_of -> "in-context-of") );
      ("from", Json.Str (Id.to_string src));
      ("to", Json.Str (Id.to_string dst));
    ]

let evidence_to_json (ev : Evidence.t) =
  Json.Obj
    [
      ("id", Json.Str (Id.to_string ev.Evidence.id));
      ("kind", Json.Str (Evidence.kind_to_string ev.Evidence.kind));
      ("description", Json.Str ev.Evidence.description);
      ("source", Json.Str ev.Evidence.source);
      ("strength", Json.Str (Evidence.strength_to_string ev.Evidence.strength));
    ]

let to_json structure =
  Json.Obj
    [
      ("nodes", Json.List (List.map node_to_json (Structure.nodes structure)));
      ("links", Json.List (List.map link_to_json (Structure.links structure)));
      ( "evidence",
        Json.List (List.map evidence_to_json (Structure.evidence structure)) );
    ]

(* --- Decoding --- *)

exception Bad of Diagnostic.t

let err code fmt = Format.kasprintf (fun m -> raise (Bad (Diagnostic.error ~code m))) fmt

let str_field obj name =
  match Json.member name obj with
  | Some (Json.Str s) -> s
  | Some _ -> err "interchange/shape" "field %S must be a string" name
  | None -> err "interchange/shape" "missing field %S" name

let opt_str_field obj name =
  match Json.member name obj with
  | Some (Json.Str s) -> Some s
  | Some _ -> err "interchange/shape" "field %S must be a string" name
  | None -> None

let id_of s =
  match Id.of_string_opt s with
  | Some id -> id
  | None -> err "interchange/bad-id" "invalid identifier %S" s

let node_of_json json =
  let id = id_of (str_field json "id") in
  let node_type =
    let t = str_field json "type" in
    match Node.type_of_string t with
    | Some ty -> ty
    | None -> err "interchange/bad-type" "unknown node type %S" t
  in
  let status =
    match opt_str_field json "status" with
    | None -> Node.Developed
    | Some s -> (
        match status_of_string s with
        | Some st -> st
        | None -> err "interchange/bad-status" "unknown status %S" s)
  in
  let formal =
    match opt_str_field json "formal" with
    | None -> None
    | Some text -> (
        match Prop.of_string text with
        | Ok f -> Some f
        | Error e ->
            err "interchange/bad-formula" "formula %S: %s" text e)
  in
  let annotations =
    match Json.member "annotations" json with
    | None -> []
    | Some (Json.List items) ->
        List.map
          (fun item ->
            match item with
            | Json.Str text -> (
                match Metadata.annotation_of_string text with
                | Ok a -> a
                | Error e ->
                    err "interchange/bad-annotation" "annotation %S: %s" text e)
            | _ -> err "interchange/shape" "annotations must be strings")
          items
    | Some _ -> err "interchange/shape" "annotations must be a list"
  in
  let evidence = Option.map id_of (opt_str_field json "evidence") in
  Node.make ~id ~node_type ~status ?formal ~annotations ?evidence
    (str_field json "text")

let link_of_json json =
  let kind =
    match str_field json "kind" with
    | "supported-by" -> Structure.Supported_by
    | "in-context-of" -> Structure.In_context_of
    | other -> err "interchange/bad-kind" "unknown link kind %S" other
  in
  (kind, id_of (str_field json "from"), id_of (str_field json "to"))

let evidence_of_json json =
  let kind =
    let k = str_field json "kind" in
    match Evidence.kind_of_string k with
    | Some kind -> kind
    | None -> err "interchange/bad-kind" "unknown evidence kind %S" k
  in
  let strength =
    match opt_str_field json "strength" with
    | None -> None
    | Some s -> (
        match Evidence.strength_of_string s with
        | Some st -> Some st
        | None -> err "interchange/bad-kind" "unknown strength %S" s)
  in
  Evidence.make
    ~id:(id_of (str_field json "id"))
    ~kind
    ?source:(opt_str_field json "source")
    ?strength
    (str_field json "description")

let list_field json name =
  match Json.member name json with
  | Some (Json.List items) -> items
  | Some _ -> err "interchange/shape" "field %S must be a list" name
  | None -> []

let of_json json =
  match
    let nodes = List.map node_of_json (list_field json "nodes") in
    let links = List.map link_of_json (list_field json "links") in
    let evidence = List.map evidence_of_json (list_field json "evidence") in
    let s = List.fold_left (fun s n -> Structure.add_node n s) Structure.empty nodes in
    let s = List.fold_left (fun s e -> Structure.add_evidence e s) s evidence in
    List.fold_left
      (fun s (kind, src, dst) -> Structure.connect kind ~src ~dst s)
      s links
  with
  | s -> Ok s
  | exception Bad d -> Error [ d ]

let export structure = Json.to_string ~indent:true (to_json structure)

let import text =
  match Json.of_string text with
  | Error e -> Error [ Diagnostic.errorf ~code:"interchange/shape" "not JSON: %s" e ]
  | Ok json -> of_json json
