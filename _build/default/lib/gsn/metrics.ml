module Id = Argus_core.Id
module Evidence = Argus_core.Evidence
module Textutil = Argus_core.Textutil

type t = {
  nodes : int;
  goals : int;
  strategies : int;
  solutions : int;
  contextual : int;
  modular : int;
  links : int;
  depth : int;
  max_fanout : int;
  undeveloped : int;
  evidence_items : int;
  evidence_by_kind : (Evidence.kind * int) list;
  formalised_nodes : int;
  formalisation_ratio : float;
  words : int;
  reading_ease : float;
}

let depth_of structure =
  let rec go visited id =
    if Id.Set.mem id visited then 0
    else
      let visited = Id.Set.add id visited in
      1
      + List.fold_left
          (fun acc child -> max acc (go visited child))
          0
          (Structure.children Structure.Supported_by id structure)
  in
  List.fold_left
    (fun acc root -> max acc (go Id.Set.empty root))
    0
    (Structure.roots structure)

let measure structure =
  let nodes = Structure.nodes structure in
  let count p = List.length (List.filter p nodes) in
  let goals = count (fun n -> n.Node.node_type = Node.Goal) in
  let strategies = count (fun n -> n.Node.node_type = Node.Strategy) in
  let solutions = count (fun n -> n.Node.node_type = Node.Solution) in
  let contextual = count (fun n -> Node.is_contextual n.Node.node_type) in
  let modular =
    count (fun n ->
        match n.Node.node_type with
        | Node.Away_goal _ | Node.Module_ref _ | Node.Contract _ -> true
        | _ -> false)
  in
  let undeveloped =
    count (fun n ->
        n.Node.status = Node.Undeveloped
        || n.Node.status = Node.Undeveloped_uninstantiated)
  in
  let formalised_nodes = count (fun n -> n.Node.formal <> None) in
  let evidence = Structure.evidence structure in
  let evidence_by_kind =
    List.filter_map
      (fun kind ->
        match
          List.length
            (List.filter (fun e -> e.Evidence.kind = kind) evidence)
        with
        | 0 -> None
        | k -> Some (kind, k))
      Evidence.all_kinds
  in
  let max_fanout =
    List.fold_left
      (fun acc n ->
        max acc
          (List.length
             (Structure.children Structure.Supported_by n.Node.id structure)))
      0 nodes
  in
  let all_text = String.concat ". " (List.map (fun n -> n.Node.text) nodes) in
  {
    nodes = List.length nodes;
    goals;
    strategies;
    solutions;
    contextual;
    modular;
    links = List.length (Structure.links structure);
    depth = depth_of structure;
    max_fanout;
    undeveloped;
    evidence_items = List.length evidence;
    evidence_by_kind;
    formalised_nodes;
    formalisation_ratio =
      (if nodes = [] then 0.0
       else float_of_int formalised_nodes /. float_of_int (List.length nodes));
    words = List.length (Textutil.words all_text);
    reading_ease =
      (if nodes = [] then 100.0 else Textutil.flesch_reading_ease all_text);
  }

let pp ppf m =
  Format.fprintf ppf
    "nodes %d (goals %d, strategies %d, solutions %d, contextual %d, \
     modular %d)@."
    m.nodes m.goals m.strategies m.solutions m.contextual m.modular;
  Format.fprintf ppf "links %d, depth %d, max fan-out %d, undeveloped %d@."
    m.links m.depth m.max_fanout m.undeveloped;
  Format.fprintf ppf "evidence items %d" m.evidence_items;
  if m.evidence_by_kind <> [] then
    Format.fprintf ppf " (%s)"
      (String.concat ", "
         (List.map
            (fun (k, n) -> Printf.sprintf "%s %d" (Evidence.kind_to_string k) n)
            m.evidence_by_kind));
  Format.fprintf ppf "@.";
  Format.fprintf ppf
    "formalised nodes %d (%.0f%%), %d words, reading ease %.0f@."
    m.formalised_nodes
    (100.0 *. m.formalisation_ratio)
    m.words m.reading_ease
