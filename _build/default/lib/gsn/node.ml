module Id = Argus_core.Id

type node_type =
  | Goal
  | Strategy
  | Solution
  | Context
  | Assumption
  | Justification
  | Away_goal of Id.t
  | Module_ref of Id.t
  | Contract of Id.t

type status =
  | Developed
  | Undeveloped
  | Uninstantiated
  | Undeveloped_uninstantiated

type t = {
  id : Id.t;
  node_type : node_type;
  text : string;
  status : status;
  formal : Argus_logic.Prop.t option;
  annotations : Metadata.annotation list;
  evidence : Id.t option;
}

let make ~id ~node_type ?(status = Developed) ?formal ?(annotations = [])
    ?evidence text =
  { id; node_type; text; status; formal; annotations; evidence }

let goal id text = make ~id:(Id.of_string id) ~node_type:Goal text
let strategy id text = make ~id:(Id.of_string id) ~node_type:Strategy text

let solution ?evidence id text =
  make ~id:(Id.of_string id) ~node_type:Solution
    ?evidence:(Option.map Id.of_string evidence)
    text

let context id text = make ~id:(Id.of_string id) ~node_type:Context text

let assumption id text = make ~id:(Id.of_string id) ~node_type:Assumption text

let justification id text =
  make ~id:(Id.of_string id) ~node_type:Justification text

let is_goal_like = function
  | Goal | Away_goal _ -> true
  | Strategy | Solution | Context | Assumption | Justification | Module_ref _
  | Contract _ ->
      false

let is_contextual = function
  | Context | Assumption | Justification -> true
  | Goal | Strategy | Solution | Away_goal _ | Module_ref _ | Contract _ ->
      false

(* Finite-verb (or copula) markers that make a sentence read as a
   proposition rather than a noun phrase.  Deliberately coarse. *)
let verb_markers =
  [
    "is"; "are"; "was"; "were"; "be"; "been"; "holds"; "hold"; "has"; "have";
    "meets"; "meet"; "satisfies"; "satisfy"; "complies"; "comply"; "shall";
    "will"; "must"; "can"; "cannot"; "does"; "do"; "operates"; "operate";
    "remains"; "remain"; "occurs"; "occur"; "exists"; "exist"; "prevents";
    "prevent"; "ensures"; "ensure"; "implies"; "imply"; "managed"; "mitigated";
    "acceptable"; "tolerable"; "identified"; "addressed"; "inhibited";
    "correct"; "safe"; "secure"; "sufficient"; "valid"; "complete";
  ]

let looks_propositional text =
  if Argus_core.Textutil.contains_symbolic_notation text then true
  else
    let words = List.map String.lowercase_ascii (Argus_core.Textutil.words text) in
    List.exists (fun w -> List.mem w verb_markers) words

let type_to_string = function
  | Goal -> "goal"
  | Strategy -> "strategy"
  | Solution -> "solution"
  | Context -> "context"
  | Assumption -> "assumption"
  | Justification -> "justification"
  | Away_goal m -> "away-goal:" ^ Id.to_string m
  | Module_ref m -> "module:" ^ Id.to_string m
  | Contract m -> "contract:" ^ Id.to_string m

let type_of_string s =
  match s with
  | "goal" -> Some Goal
  | "strategy" -> Some Strategy
  | "solution" -> Some Solution
  | "context" -> Some Context
  | "assumption" -> Some Assumption
  | "justification" -> Some Justification
  | _ -> (
      match String.index_opt s ':' with
      | None -> None
      | Some i -> (
          let kind = String.sub s 0 i in
          let rest = String.sub s (i + 1) (String.length s - i - 1) in
          match (kind, Id.of_string_opt rest) with
          | "away-goal", Some m -> Some (Away_goal m)
          | "module", Some m -> Some (Module_ref m)
          | "contract", Some m -> Some (Contract m)
          | _ -> None))

let pp ppf n =
  Format.fprintf ppf "[%s] %a: %s" (type_to_string n.node_type) Id.pp n.id
    n.text;
  match n.formal with
  | None -> ()
  | Some f -> Format.fprintf ppf " {%a}" Argus_logic.Prop.pp f

let equal a b = a = b
