module Id = Argus_core.Id

type t =
  | Any
  | Type_is of Node.node_type
  | Text_contains of string
  | Has_attr of string
  | Attr_is of string * Metadata.value
  | Attr_ge of string * int
  | Attr_le of string * int
  | Not of t
  | And of t * t
  | Or of t * t

let lowercase = String.lowercase_ascii

let contains_ci hay needle =
  let hay = lowercase hay and needle = lowercase needle in
  let nh = String.length hay and nn = String.length needle in
  if nn = 0 then true
  else
    let rec go i =
      if i + nn > nh then false
      else String.sub hay i nn = needle || go (i + 1)
    in
    go 0

let first_arg name node =
  List.find_map
    (fun a ->
      if a.Metadata.attr = name then
        match a.Metadata.args with [] -> None | v :: _ -> Some v
      else None)
    node.Node.annotations

let numeric = function
  | Metadata.Int i | Metadata.Nat i -> Some i
  | Metadata.Str _ | Metadata.Enum _ -> None

let rec matches q node =
  match q with
  | Any -> true
  | Type_is ty -> node.Node.node_type = ty
  | Text_contains s -> contains_ci node.Node.text s
  | Has_attr name ->
      List.exists (fun a -> a.Metadata.attr = name) node.Node.annotations
  | Attr_is (name, v) -> first_arg name node = Some v
  | Attr_ge (name, bound) -> (
      match Option.bind (first_arg name node) numeric with
      | Some i -> i >= bound
      | None -> false)
  | Attr_le (name, bound) -> (
      match Option.bind (first_arg name node) numeric with
      | Some i -> i <= bound
      | None -> false)
  | Not q -> not (matches q node)
  | And (a, b) -> matches a node && matches b node
  | Or (a, b) -> matches a node || matches b node

let select q structure =
  List.filter (matches q) (Structure.nodes structure)

let trace_view q structure =
  let matched =
    select q structure |> List.map (fun n -> n.Node.id) |> Id.Set.of_list
  in
  (* Ancestors over Supported_by, walking parent links upward. *)
  let rec ancestors acc id =
    List.fold_left
      (fun acc parent ->
        if Id.Set.mem parent acc then acc
        else ancestors (Id.Set.add parent acc) parent)
      acc
      (Structure.parents Structure.Supported_by id structure)
  in
  let keep = Id.Set.fold (fun id acc -> ancestors acc id) matched matched in
  let keep =
    Id.Set.fold
      (fun id acc ->
        List.fold_left
          (fun acc ctx -> Id.Set.add ctx acc)
          acc
          (Structure.context_of id structure))
      keep keep
  in
  let view = Structure.restrict keep structure in
  (* Nodes whose support was truncated by the view are re-marked
     undeveloped, so the view remains a well-formed fragment (the same
     convention as hicase folding). *)
  Structure.map_nodes
    (fun n ->
      if
        Structure.children Structure.Supported_by n.Node.id view = []
        && Structure.children Structure.Supported_by n.Node.id structure <> []
        && n.Node.status = Node.Developed
      then { n with Node.status = Node.Undeveloped }
      else n)
    view

(* --- Parser --- *)

exception Parse_error of string

type token =
  | Word of string
  | Str of string
  | Int_tok of int
  | TEq
  | TGe
  | TLe
  | TTilde
  | TNot
  | TAnd
  | TOr
  | TLparen
  | TRparen

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = ':'

let tokenise s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) (TLparen :: acc)
      | ')' -> go (i + 1) (TRparen :: acc)
      | '=' -> go (i + 1) (TEq :: acc)
      | '~' -> go (i + 1) (TTilde :: acc)
      | '!' -> go (i + 1) (TNot :: acc)
      | '&' -> go (i + 1) (TAnd :: acc)
      | '|' -> go (i + 1) (TOr :: acc)
      | '>' when i + 1 < n && s.[i + 1] = '=' -> go (i + 2) (TGe :: acc)
      | '<' when i + 1 < n && s.[i + 1] = '=' -> go (i + 2) (TLe :: acc)
      | '"' ->
          let buf = Buffer.create 16 in
          let rec scan j =
            if j >= n then raise (Parse_error "unterminated string")
            else if s.[j] = '"' then j + 1
            else begin
              Buffer.add_char buf s.[j];
              scan (j + 1)
            end
          in
          let next = scan (i + 1) in
          go next (Str (Buffer.contents buf) :: acc)
      | c when is_word_char c ->
          let j = ref i in
          while !j < n && is_word_char s.[!j] do
            incr j
          done;
          let w = String.sub s i (!j - i) in
          let tok =
            match int_of_string_opt w with
            | Some k -> Int_tok k
            | None -> Word w
          in
          go !j (tok :: acc)
      | c -> raise (Parse_error (Printf.sprintf "unexpected character %C" c))
  in
  go 0 []

let parse tokens =
  let toks = ref tokens in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let advance () =
    match !toks with
    | [] -> raise (Parse_error "unexpected end of query")
    | t :: rest ->
        toks := rest;
        t
  in
  let rec p_or () =
    let lhs = p_and () in
    match peek () with
    | Some TOr ->
        ignore (advance ());
        Or (lhs, p_or ())
    | _ -> lhs
  and p_and () =
    let lhs = p_unary () in
    match peek () with
    | Some TAnd ->
        ignore (advance ());
        And (lhs, p_and ())
    | _ -> lhs
  and p_unary () =
    match peek () with
    | Some TNot ->
        ignore (advance ());
        Not (p_unary ())
    | Some TLparen ->
        ignore (advance ());
        let q = p_or () in
        (match advance () with
        | TRparen -> q
        | _ -> raise (Parse_error "expected ')'"))
    | _ -> p_atom ()
  and p_atom () =
    match advance () with
    | Word "any" -> Any
    | Word "has" -> (
        match advance () with
        | Word name -> Has_attr name
        | _ -> raise (Parse_error "expected an attribute name after 'has'"))
    | Word "type" -> (
        match advance () with
        | TEq -> (
            match advance () with
            | Word ty -> (
                match Node.type_of_string ty with
                | Some ty -> Type_is ty
                | None ->
                    raise (Parse_error (Printf.sprintf "unknown node type %S" ty)))
            | _ -> raise (Parse_error "expected a node type"))
        | _ -> raise (Parse_error "expected '=' after 'type'"))
    | Word "text" -> (
        match advance () with
        | TTilde -> (
            match advance () with
            | Str s | Word s -> Text_contains s
            | _ -> raise (Parse_error "expected text after '~'"))
        | _ -> raise (Parse_error "expected '~' after 'text'"))
    | Word name -> (
        match advance () with
        | TEq -> (
            match advance () with
            | Int_tok i ->
                Attr_is (name, if i >= 0 then Metadata.Nat i else Metadata.Int i)
            | Word w -> Attr_is (name, Metadata.Enum w)
            | Str s -> Attr_is (name, Metadata.Str s)
            | _ -> raise (Parse_error "expected a value after '='"))
        | TGe -> (
            match advance () with
            | Int_tok i -> Attr_ge (name, i)
            | _ -> raise (Parse_error "expected an integer after '>='"))
        | TLe -> (
            match advance () with
            | Int_tok i -> Attr_le (name, i)
            | _ -> raise (Parse_error "expected an integer after '<='"))
        | _ ->
            raise
              (Parse_error
                 (Printf.sprintf "expected '=', '>=' or '<=' after %S" name)))
    | _ -> raise (Parse_error "expected a query atom")
  in
  let q = p_or () in
  (match !toks with
  | [] -> ()
  | _ -> raise (Parse_error "trailing input after query"));
  q

let of_string s =
  match parse (tokenise s) with
  | q -> Ok q
  | exception Parse_error msg -> Error msg

let rec pp ppf = function
  | Any -> Format.pp_print_string ppf "any"
  | Type_is ty -> Format.fprintf ppf "type = %s" (Node.type_to_string ty)
  | Text_contains s -> Format.fprintf ppf "text ~ %S" s
  | Has_attr a -> Format.fprintf ppf "has %s" a
  | Attr_is (a, v) -> Format.fprintf ppf "%s = %s" a (Metadata.value_to_string v)
  | Attr_ge (a, i) -> Format.fprintf ppf "%s >= %d" a i
  | Attr_le (a, i) -> Format.fprintf ppf "%s <= %d" a i
  | Not q -> Format.fprintf ppf "!(%a)" pp q
  | And (a, b) -> Format.fprintf ppf "(%a & %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a | %a)" pp a pp b
