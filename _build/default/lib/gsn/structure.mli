(** GSN argument structures — the Denney–Pai formal object.

    Denney and Pai formalise a partial safety-case argument structure as
    a tuple ⟨N, l, t, →⟩ of nodes, a type labelling, node contents and a
    connector relation.  Here the labelling and contents live inside
    {!Node.t}; the connector relation is split into the standard's two
    link kinds, {e SupportedBy} and {e InContextOf}.

    The structure is persistent (functional updates) and deliberately
    permissive: anything can be connected, and {!Wellformed.check}
    reports the violations — which is what lets the toolkit represent
    the malformed arguments the experiments need. *)

type link = Supported_by | In_context_of

type t

val empty : t

val add_node : Node.t -> t -> t
(** Replaces any existing node with the same id. *)

val remove_node : Argus_core.Id.t -> t -> t
(** Also removes all links touching the node. *)

val connect : link -> src:Argus_core.Id.t -> dst:Argus_core.Id.t -> t -> t
(** Adds a link; endpoints need not exist yet (the checker reports
    dangling endpoints).  Duplicate links are ignored. *)

val disconnect : link -> src:Argus_core.Id.t -> dst:Argus_core.Id.t -> t -> t

val add_evidence : Argus_core.Evidence.t -> t -> t
(** Registers an evidence item that solution nodes can cite. *)

val of_nodes :
  ?links:(link * string * string) list ->
  ?evidence:Argus_core.Evidence.t list ->
  Node.t list ->
  t
(** Convenience builder; link endpoints given as strings are validated
    as identifiers. *)

val find : Argus_core.Id.t -> t -> Node.t option
val find_exn : Argus_core.Id.t -> t -> Node.t
val mem : Argus_core.Id.t -> t -> bool
val nodes : t -> Node.t list
(** In insertion order. *)

val size : t -> int
val links : t -> (link * Argus_core.Id.t * Argus_core.Id.t) list
val evidence : t -> Argus_core.Evidence.t list
val find_evidence : Argus_core.Id.t -> t -> Argus_core.Evidence.t option

val children : link -> Argus_core.Id.t -> t -> Argus_core.Id.t list
(** Link targets in insertion order. *)

val parents : link -> Argus_core.Id.t -> t -> Argus_core.Id.t list

val roots : t -> Argus_core.Id.t list
(** Nodes with no incoming [Supported_by] link and a non-contextual
    type. *)

val supported_subtree : Argus_core.Id.t -> t -> Argus_core.Id.t list
(** The node plus everything reachable over [Supported_by] links,
    pre-order, each node once (the relation may be cyclic; cycles are
    cut). *)

val context_of : Argus_core.Id.t -> t -> Argus_core.Id.t list
(** [In_context_of] targets of the node. *)

val has_cycle : t -> Argus_core.Id.t list option
(** A [Supported_by] cycle as a witness node list, if any. *)

val map_nodes : (Node.t -> Node.t) -> t -> t
(** The function must preserve node ids. *)

val fold_nodes : (Node.t -> 'a -> 'a) -> t -> 'a -> 'a

val restrict : Argus_core.Id.Set.t -> t -> t
(** Sub-structure induced by the kept nodes: their links among
    themselves, and the evidence table unchanged. *)

val equal : t -> t -> bool
(** Same nodes, links and evidence (order-insensitive). *)

val to_dot : t -> string
(** Graphviz rendering: goals as boxes, strategies as parallelograms,
    solutions as circles, context as rounded boxes; [Supported_by] as
    solid arrows, [In_context_of] as dashed. *)

val pp_outline : Format.formatter -> t -> unit
(** Indented text outline from the roots, for terminal display. *)
