(** Typed metadata annotations for argument nodes.

    Denney, Naylor and Pai propose "semantically enriching" GSN nodes
    with metadata of the form [attribute ::= attributeName param*] where
    parameters are strings, integers, naturals or values of user-defined
    enumerations, so that arguments can be queried structurally.  This
    module is that annotation language: an {e ontology} declares the
    attributes and their parameter types; {!validate} type-checks a
    node's annotations against it. *)

type value = Int of int | Nat of int | Str of string | Enum of string

(** Parameter type declarations. *)
type param_type =
  | Pint
  | Pnat  (** Non-negative integer. *)
  | Pstr
  | Penum of string  (** Name of a declared enumeration. *)

type attribute_decl = { name : string; params : param_type list }

type ontology = {
  enums : (string * string list) list;
      (** Enumeration name to allowed values, e.g.
          [("element", ["aileron"; "elevator"; "flaps"])]. *)
  attributes : attribute_decl list;
}

type annotation = { attr : string; args : value list }

val ontology :
  ?enums:(string * string list) list -> attribute_decl list -> ontology

val attr : string -> param_type list -> attribute_decl

val validate :
  ontology -> annotation list -> Argus_core.Diagnostic.t list
(** Codes under ["metadata/"]: ["metadata/unknown-attribute"],
    ["metadata/arity"], ["metadata/type"], ["metadata/unknown-enum"],
    ["metadata/not-a-member"], ["metadata/negative-nat"]. *)

val value_to_string : value -> string
val pp_annotation : Format.formatter -> annotation -> unit

val annotation_of_string : string -> (annotation, string) result
(** Parses ["severity catastrophic 4 \"note\""]-style text: an attribute
    name followed by whitespace-separated parameters; bare words are
    enum values, integers are ints (naturals when non-negative), quoted
    strings are strings. *)
