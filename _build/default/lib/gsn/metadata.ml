module Diagnostic = Argus_core.Diagnostic

type value = Int of int | Nat of int | Str of string | Enum of string
type param_type = Pint | Pnat | Pstr | Penum of string
type attribute_decl = { name : string; params : param_type list }

type ontology = {
  enums : (string * string list) list;
  attributes : attribute_decl list;
}

type annotation = { attr : string; args : value list }

let ontology ?(enums = []) attributes = { enums; attributes }
let attr name params = { name; params }

let value_to_string = function
  | Int i -> string_of_int i
  | Nat n -> string_of_int n
  | Str s -> Printf.sprintf "%S" s
  | Enum e -> e

let pp_annotation ppf a =
  Format.fprintf ppf "%s" a.attr;
  List.iter (fun v -> Format.fprintf ppf " %s" (value_to_string v)) a.args

let check_param ontology ~attr_name ~index declared actual =
  let errf code fmt =
    Format.kasprintf
      (fun m -> Some (Diagnostic.error ~code m))
      fmt
  in
  match (declared, actual) with
  | Pint, (Int _ | Nat _) -> None
  | Pnat, Nat _ -> None
  | Pnat, Int n when n >= 0 -> None
  | Pnat, Int _ ->
      errf "metadata/negative-nat" "%s: parameter %d must be a natural"
        attr_name index
  | Pstr, Str _ -> None
  | Penum enum_name, Enum v -> (
      match List.assoc_opt enum_name ontology.enums with
      | None ->
          errf "metadata/unknown-enum" "%s: enumeration %s is not declared"
            attr_name enum_name
      | Some members ->
          if List.mem v members then None
          else
            errf "metadata/not-a-member" "%s: %s is not a member of %s"
              attr_name v enum_name)
  | _, _ ->
      errf "metadata/type" "%s: parameter %d has the wrong type" attr_name
        index

let validate ontology annotations =
  List.concat_map
    (fun ann ->
      match
        List.find_opt (fun d -> d.name = ann.attr) ontology.attributes
      with
      | None ->
          [
            Diagnostic.errorf ~code:"metadata/unknown-attribute"
              "attribute %s is not declared in the ontology" ann.attr;
          ]
      | Some decl ->
          if List.length decl.params <> List.length ann.args then
            [
              Diagnostic.errorf ~code:"metadata/arity"
                "%s expects %d parameter(s) but has %d" ann.attr
                (List.length decl.params)
                (List.length ann.args);
            ]
          else
            List.filteri
              (fun _ _ -> true)
              (List.mapi (fun i (d, a) -> (i, d, a))
                 (List.combine decl.params ann.args))
            |> List.filter_map (fun (i, d, a) ->
                   check_param ontology ~attr_name:ann.attr ~index:(i + 1) d a))
    annotations

(* --- Parser --- *)

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-'

let annotation_of_string s =
  let n = String.length s in
  let rec tokens i acc =
    if i >= n then Ok (List.rev acc)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> tokens (i + 1) acc
      | '"' ->
          let buf = Buffer.create 16 in
          let rec scan j =
            if j >= n then Error "unterminated string"
            else if s.[j] = '"' then Ok (j + 1)
            else begin
              Buffer.add_char buf s.[j];
              scan (j + 1)
            end
          in
          Result.bind (scan (i + 1)) (fun next ->
              tokens next (`Str (Buffer.contents buf) :: acc))
      | c when is_word_char c || c = '+' ->
          let j = ref i in
          while !j < n && (is_word_char s.[!j] || s.[!j] = '+') do
            incr j
          done;
          tokens !j (`Word (String.sub s i (!j - i)) :: acc)
      | c -> Error (Printf.sprintf "unexpected character %C" c)
  in
  match tokens 0 [] with
  | Error e -> Error e
  | Ok [] -> Error "empty annotation"
  | Ok (`Str _ :: _) -> Error "annotation must start with an attribute name"
  | Ok (`Word name :: rest) ->
      let arg_of = function
        | `Str s -> Str s
        | `Word w -> (
            match int_of_string_opt w with
            | Some i when i >= 0 -> Nat i
            | Some i -> Int i
            | None -> Enum w)
      in
      Ok { attr = name; args = List.map arg_of rest }
