(** GSN argument elements.

    The node types of the GSN Community Standard, plus the modular
    extension (away goals, module references, contracts) the standard's
    rules mention — the paper quotes one such rule in Section II.B:
    "solutions cannot be in the context of an away goal". *)

type node_type =
  | Goal
  | Strategy
  | Solution
  | Context
  | Assumption
  | Justification
  | Away_goal of Argus_core.Id.t  (** Goal re-used from another module. *)
  | Module_ref of Argus_core.Id.t  (** A whole supporting module. *)
  | Contract of Argus_core.Id.t  (** A module contract. *)

(** Development/instantiation decorations (the diamond and triangle
    marks of the standard; patterns produce the uninstantiated ones). *)
type status =
  | Developed
  | Undeveloped
  | Uninstantiated
  | Undeveloped_uninstantiated

type t = {
  id : Argus_core.Id.t;
  node_type : node_type;
  text : string;
  status : status;
  formal : Argus_logic.Prop.t option;
      (** Optional formal rendering of the node's claim (Rushby-style
          partial formalisation; [None] for purely informal nodes). *)
  annotations : Metadata.annotation list;
      (** Denney–Naylor–Pai metadata; empty when unannotated. *)
  evidence : Argus_core.Id.t option;
      (** For solutions: the evidence item the node cites. *)
}

val make :
  id:Argus_core.Id.t ->
  node_type:node_type ->
  ?status:status ->
  ?formal:Argus_logic.Prop.t ->
  ?annotations:Metadata.annotation list ->
  ?evidence:Argus_core.Id.t ->
  string ->
  t
(** [make ~id ~node_type text]; [status] defaults to [Developed]. *)

val goal : string -> string -> t
(** [goal "G1" text] — convenience constructors; id strings are
    validated by {!Argus_core.Id.of_string}. *)

val strategy : string -> string -> t
val solution : ?evidence:string -> string -> string -> t
val context : string -> string -> t
val assumption : string -> string -> t
val justification : string -> string -> t

val is_goal_like : node_type -> bool
(** Goals, away goals — things that state claims. *)

val is_contextual : node_type -> bool
(** Context, assumption, justification. *)

val looks_propositional : string -> bool
(** Heuristic used by the well-formedness checker: GSN requires goal
    text to be a proposition, and the paper criticises generated goals
    like "Formal proof that Quat4::quat(NED, Body) holds for Fc.cpp" for
    not being one.  We flag goal text with no finite-verb marker (no
    "is"/"are"/"holds"/"shall"/"meets"/..., no [->]) as suspect. *)

val type_to_string : node_type -> string
val type_of_string : string -> node_type option
(** Inverse of {!type_to_string} for the simple types; modular types
    parse as ["away-goal:M"], ["module:M"], ["contract:M"]. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
