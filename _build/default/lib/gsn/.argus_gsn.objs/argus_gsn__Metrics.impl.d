lib/gsn/metrics.ml: Argus_core Format List Node Printf String Structure
