lib/gsn/query.mli: Format Metadata Node Structure
