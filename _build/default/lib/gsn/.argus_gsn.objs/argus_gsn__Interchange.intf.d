lib/gsn/interchange.mli: Argus_core Structure
