lib/gsn/modular.ml: Argus_core List Node Option Printf Structure Wellformed
