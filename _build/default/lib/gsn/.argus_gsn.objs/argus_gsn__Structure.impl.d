lib/gsn/structure.ml: Argus_core Buffer Format List Node Printf String
