lib/gsn/query.ml: Argus_core Buffer Format List Metadata Node Option Printf String Structure
