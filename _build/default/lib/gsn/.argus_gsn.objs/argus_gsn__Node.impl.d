lib/gsn/node.ml: Argus_core Argus_logic Format List Metadata Option String
