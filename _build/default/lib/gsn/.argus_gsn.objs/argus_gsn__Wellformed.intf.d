lib/gsn/wellformed.mli: Argus_core Structure
