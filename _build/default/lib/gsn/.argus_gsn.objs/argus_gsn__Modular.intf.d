lib/gsn/modular.mli: Argus_core Structure
