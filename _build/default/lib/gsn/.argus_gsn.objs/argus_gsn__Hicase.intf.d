lib/gsn/hicase.mli: Argus_core Structure
