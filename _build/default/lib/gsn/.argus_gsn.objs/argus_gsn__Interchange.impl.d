lib/gsn/interchange.ml: Argus_core Argus_logic Format List Metadata Node Option Structure
