lib/gsn/metadata.ml: Argus_core Buffer Format List Printf Result String
