lib/gsn/metrics.mli: Argus_core Format Structure
