lib/gsn/hicase.ml: Argus_core List Node Structure
