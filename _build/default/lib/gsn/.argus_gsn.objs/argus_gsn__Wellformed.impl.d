lib/gsn/wellformed.ml: Argus_core List Node String Structure
