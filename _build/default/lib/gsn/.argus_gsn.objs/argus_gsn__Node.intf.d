lib/gsn/node.mli: Argus_core Argus_logic Format Metadata
