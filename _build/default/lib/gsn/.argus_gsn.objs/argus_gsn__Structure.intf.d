lib/gsn/structure.mli: Argus_core Format Node
