lib/gsn/metadata.mli: Argus_core Format
