(** Structured queries over annotated arguments (Denney, Naylor & Pai).

    The surveyed example: "generate a view ... of traceability to only
    those hazards whose likelihood of occurrence is remote, and whose
    severity is catastrophic".  With {!Metadata} annotations on nodes,
    such a query is [attr "likelihood" (Enum "remote") && attr
    "severity" (Enum "catastrophic")], and {!trace_view} produces the
    sub-argument from the root down to the matching nodes. *)

type t =
  | Any
  | Type_is of Node.node_type
  | Text_contains of string  (** Case-insensitive substring. *)
  | Has_attr of string  (** Annotation with this attribute name. *)
  | Attr_is of string * Metadata.value
      (** Annotation whose first parameter equals the value. *)
  | Attr_ge of string * int
  | Attr_le of string * int
      (** Numeric comparison on the first parameter. *)
  | Not of t
  | And of t * t
  | Or of t * t

val matches : t -> Node.t -> bool

val select : t -> Structure.t -> Node.t list
(** Matching nodes in insertion order. *)

val trace_view : t -> Structure.t -> Structure.t
(** Sub-structure containing every matching node, every ancestor up to a
    root (over [Supported_by]), and the contextual elements of the kept
    nodes — the "traceability view" of the surveyed paper.  Nodes whose
    support the view truncates are re-marked {!Node.Undeveloped}, so a
    view of a well-formed case is well-formed (the hicase convention). *)

val of_string : string -> (t, string) result
(** Query syntax:
    {v
    q ::= 'any' | 'type' '=' ident | 'text' '~' string
        | name '=' value | name '>=' int | name '<=' int
        | 'has' name | '!' q | q '&' q | q '|' q | '(' q ')'
    v}
    ['&'] binds tighter than ['|'].  Values: integers, quoted strings,
    bare words (enum members). *)

val pp : Format.formatter -> t -> unit
