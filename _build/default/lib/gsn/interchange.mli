(** JSON interchange for argument structures.

    A stable, tool-neutral encoding so cases can cross between Argus,
    editors and the D-Case/SACM-style ecosystems the surveyed tooling
    papers target:

    {v
    { "nodes":    [ { "id", "type", "text", "status",
                      "formal"?, "annotations"?, "evidence"? } ],
      "links":    [ { "kind", "from", "to" } ],
      "evidence": [ { "id", "kind", "description", "source",
                      "strength" } ] }
    v}

    [to_json] followed by [of_json] is the identity on structures. *)

val to_json : Structure.t -> Argus_core.Json.t

val of_json :
  Argus_core.Json.t ->
  (Structure.t, Argus_core.Diagnostic.t list) result
(** Validation errors carry codes under ["interchange/"]:
    ["interchange/shape"] (wrong JSON shape), ["interchange/bad-id"],
    ["interchange/bad-type"], ["interchange/bad-status"],
    ["interchange/bad-kind"], ["interchange/bad-formula"],
    ["interchange/bad-annotation"]. *)

val export : Structure.t -> string
(** Pretty-printed JSON text. *)

val import : string -> (Structure.t, Argus_core.Diagnostic.t list) result
