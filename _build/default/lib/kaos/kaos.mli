(** KAOS-style goal models with LTL-formalised goals.

    Brunel and Cazin (Section III.G of the paper) "propose first
    developing a KAOS goal structure and then deriving the formalised
    argument from this"; the formal argument's structure reflects the
    goal structure's.  This module is that substrate: an AND-refinement
    goal tree whose goals may carry LTL formalisations, with

    - structural checking (cycles, unrefined non-leaf goals, leaves
      without an operationalising requirement/expectation);
    - refinement verification by {e bounded refutation}: a search over
      random lasso traces for one satisfying every subgoal but not the
      parent (LTL refinement entailment is expensive in general; a
      counterexample search is what a bounded model checker does, and a
      found trace is a definitive refutation);
    - derivation of the GSN argument, as the surveyed proposal
      describes. *)

type kind =
  | Goal  (** To be refined into subgoals. *)
  | Requirement of string  (** Operationalised; assigned to an agent. *)
  | Expectation of string  (** Assigned to an agent in the environment. *)

type node = {
  id : Argus_core.Id.t;
  kind : kind;
  description : string;
  formal : Argus_ltl.Ltl.t option;
}

type t

val empty : t
val add : ?parent:string -> node -> t -> t
(** Adds a node, optionally as a child of an existing node (by id
    string).  @raise Invalid_argument if the parent is unknown. *)

val goal : ?formal:Argus_ltl.Ltl.t -> string -> string -> node
(** [goal id description]. *)

val requirement :
  ?formal:Argus_ltl.Ltl.t -> agent:string -> string -> string -> node

val expectation :
  ?formal:Argus_ltl.Ltl.t -> agent:string -> string -> string -> node

val find : Argus_core.Id.t -> t -> node option
val children : Argus_core.Id.t -> t -> node list
val roots : t -> node list
val size : t -> int

val check : t -> Argus_core.Diagnostic.t list
(** Codes under ["kaos/"]: ["kaos/unrefined-goal"] (a [Goal] leaf),
    ["kaos/refined-requirement"] (a requirement/expectation with
    children), ["kaos/informal-under-formal"] (warning: a formal goal
    refined by an informal sub-goal, so the refinement cannot be
    verified; informal requirements/expectations are normal
    operationalisations and are not flagged). *)

(** Result of bounded refinement verification for one goal. *)
type verdict =
  | Verified_bounded of int
      (** No counterexample among this many sampled traces. *)
  | Refuted of Argus_ltl.Ltl.Trace.t
      (** A trace satisfying all subgoals but not the parent. *)
  | Not_applicable  (** Parent or all children lack formalisation. *)

val verify_refinement :
  ?traces:int -> ?seed:int -> t -> Argus_core.Id.t -> verdict
(** Checks the AND-refinement of the given goal: children's formulas
    jointly entail the parent's, by counterexample search over random
    lassos built from the formulas' atoms (prefix up to 4, loop up to
    3).  Children without formulas are skipped (making the check
    weaker, as flagged by {!check}). *)

val verify_all :
  ?traces:int -> ?seed:int -> t -> (Argus_core.Id.t * verdict) list
(** Every refined goal, in insertion order. *)

val to_gsn : t -> Argus_gsn.Structure.t
(** The derived argument: goals become GSN goals (with their LTL text
    recorded in the node text), refinements become strategies,
    requirements/expectations become goals supported by solutions citing
    synthesised evidence ("satisfied by agent ..."). *)

val pp : Format.formatter -> t -> unit
