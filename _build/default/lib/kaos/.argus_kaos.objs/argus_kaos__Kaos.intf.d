lib/kaos/kaos.mli: Argus_core Argus_gsn Argus_ltl Format
