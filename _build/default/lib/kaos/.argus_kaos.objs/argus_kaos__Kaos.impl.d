lib/kaos/kaos.ml: Argus_core Argus_gsn Argus_ltl Format Hashtbl List Option Printf String
