type pos = { file : string; line : int; col : int }
type t = { start : pos; stop : pos }

let pos ?(file = "<input>") ~line ~col () = { file; line; col }
let make start stop = { start; stop }
let point p = { start = p; stop = p }

let dummy_pos = { file = "<none>"; line = 0; col = 0 }
let dummy = { start = dummy_pos; stop = dummy_pos }
let is_dummy t = t.start.line = 0 && t.stop.line = 0

let pos_le a b = a.line < b.line || (a.line = b.line && a.col <= b.col)

let merge a b =
  let start = if pos_le a.start b.start then a.start else b.start in
  let stop = if pos_le a.stop b.stop then b.stop else a.stop in
  { start; stop }

let pos_equal a b = a.file = b.file && a.line = b.line && a.col = b.col
let equal a b = pos_equal a.start b.start && pos_equal a.stop b.stop

let pp ppf t =
  if pos_equal t.start t.stop then
    Format.fprintf ppf "%s:%d.%d" t.start.file t.start.line t.start.col
  else
    Format.fprintf ppf "%s:%d.%d-%d.%d" t.start.file t.start.line t.start.col
      t.stop.line t.stop.col
