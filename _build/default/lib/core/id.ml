type t = string

exception Invalid of string

let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

let is_body_char c =
  is_letter c || (c >= '0' && c <= '9') || c = '_' || c = '.' || c = '-'

let is_valid s =
  String.length s > 0
  && is_letter s.[0]
  && String.for_all is_body_char s

let of_string s = if is_valid s then s else raise (Invalid s)
let of_string_opt s = if is_valid s then Some s else None
let to_string s = s
let equal = String.equal
let compare = String.compare
let pp = Format.pp_print_string

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Gen = struct
  type t = { prefix : string; mutable next : int }

  let create ?(prefix = "n") () =
    if not (String.length prefix > 0 && is_letter prefix.[0]) then
      raise (Invalid prefix);
    { prefix; next = 1 }

  let fresh g =
    let id = Printf.sprintf "%s%d" g.prefix g.next in
    g.next <- g.next + 1;
    id

  let rec fresh_avoiding g used =
    let id = fresh g in
    if Set.mem id used then fresh_avoiding g used else id
end
