(** Lifecycle roles and communication purposes of an assurance case.

    Section II.A of the paper lists what a safety argument must
    communicate and to whom.  These enumerations drive the
    reading-audience experiment (Section VI.C), where comprehension of a
    formalised argument depends on the reader's training in symbolic
    logic, and the per-role rendering choices of the CLI. *)

(** The readers Section II.A enumerates. *)
type role =
  | Design_engineer  (** Engineers creating or refining the design. *)
  | Stakeholder  (** Judging how safe a system is or will be. *)
  | Certifier  (** Certifiers and safety assessors. *)
  | Operator  (** Changing operating procedures. *)
  | Field_safety_engineer  (** Monitoring safety in the field. *)
  | Maintainer  (** Making changes to existing systems. *)
  | Manager  (** Considering operational changes. *)
  | Mechanical_engineer  (** Non-software engineering readers. *)

(** What the argument must convey (the bulleted list of Section II.A). *)
type purpose =
  | Operational_definition_of_safe
  | Risk_management_approach
  | Usage_assumptions
  | Evidence_claim_linkage
  | Key_safety_considerations

type phase = Concept | Development | Certification | Operation | Maintenance

val all_roles : role list
val all_purposes : purpose list
val all_phases : phase list

val logic_literacy : role -> float
(** Baseline probability, in [0,1], that a reader in this role can read
    symbolic deductive logic fluently.  The paper's premise: software
    engineers learn formal logic at university; managers, mechanical
    engineers and safety assessors not necessarily.  Used as the default
    subject-model parameter in the Section VI.C simulation. *)

val reads_in_phase : role -> phase -> bool
(** Which roles consult the case in which lifecycle phase. *)

val role_to_string : role -> string
val role_of_string : string -> role option
val purpose_to_string : purpose -> string
val phase_to_string : phase -> string
val pp_role : Format.formatter -> role -> unit
val pp_purpose : Format.formatter -> purpose -> unit
val pp_phase : Format.formatter -> phase -> unit
