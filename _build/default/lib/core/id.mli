(** Identifiers for argument elements, evidence items and other artefacts.

    Identifiers are non-empty strings over [A-Za-z0-9_.-] starting with a
    letter.  They identify nodes across notations (GSN, CAE, Toulmin), so
    equality and ordering are defined here once and reused everywhere. *)

type t

exception Invalid of string
(** Raised by {!of_string} when the candidate violates the lexical rules.
    The payload is the offending string. *)

val of_string : string -> t
(** [of_string s] validates [s] and returns it as an identifier.
    @raise Invalid if [s] is empty, starts with a non-letter, or contains
    a character outside [A-Za-z0-9_.-]. *)

val of_string_opt : string -> t option
(** Like {!of_string} but returns [None] instead of raising. *)

val to_string : t -> string

val is_valid : string -> bool
(** [is_valid s] is [true] iff [of_string s] would succeed. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

module Gen : sig
  (** Fresh-identifier generators, used by pattern instantiation and by
      proof-to-argument generation where element names are synthesised. *)

  type id := t
  type t

  val create : ?prefix:string -> unit -> t
  (** [create ~prefix ()] makes a generator producing [prefix1],
      [prefix2], ... The default prefix is ["n"]. *)

  val fresh : t -> id
  (** Next fresh identifier.  Never returns the same identifier twice for
      one generator. *)

  val fresh_avoiding : t -> Set.t -> id
  (** [fresh_avoiding g used] returns the next fresh identifier not in
      [used]. *)
end
