(** Plain-text utilities shared by the lints and the reading-audience
    experiment: tokenisation, normalisation, and a readability score.

    The equivocation lint needs word-level comparison of node texts; the
    Section VI.C simulation needs a per-argument reading-difficulty
    measure, for which we use the Flesch reading-ease formula with a
    heuristic syllable counter (exact syllabification is unnecessary —
    only the relative ordering of argument variants matters). *)

val words : string -> string list
(** Splits on non-alphanumeric characters; drops empty tokens.
    ["The thrust-reversers are inhibited"] gives
    [["The"; "thrust"; "reversers"; "are"; "inhibited"]]. *)

val normalise_word : string -> string
(** Lowercases and strips a trailing ['s] or [s] plural suffix of words
    longer than three characters — a deliberately light stemmer, enough
    to make ["Banks"] and ["bank"] compare equal in the lint. *)

val content_words : string -> string list
(** {!words}, normalised, with English stop words removed. *)

val sentences : string -> string list
(** Splits on [.!?] boundaries; drops empty sentences. *)

val syllables : string -> int
(** Heuristic syllable count of one word (vowel-group counting with a
    silent-e adjustment); at least 1 for a non-empty word. *)

val flesch_reading_ease : string -> float
(** 206.835 - 1.015 (words/sentences) - 84.6 (syllables/words).
    Higher is easier.  Returns 100.0 for empty text. *)

val levenshtein : string -> string -> int
(** Edit distance, used by the pattern-instantiation defect classifier. *)

val contains_symbolic_notation : string -> bool
(** Whether the text contains characters or digraphs characteristic of
    symbolic logic: [=>], [->], [&], [|-], [¬], [∧], [∨], [→], [⇒],
    [∀], [∃], [(x)] variable-ish parenthesised terms such as
    [wcet(task_1, 250)].  Used to classify node text as formal or
    natural-language (survey research question 2). *)
