(** Evidence items referenced by assurance arguments.

    The paper distinguishes the {e kinds} of evidence a safety case cites
    (test results, formal proof, reviews, field data, ...) because the
    soundness of an argument depends on whether each kind can support the
    claim it is attached to (Section V.B: asserting [wcet(task_1, 250)]
    on the basis of unit-test results is a wrong-reasons fallacy).  The
    {!supports_kind} table encodes which claim strengths each evidence
    kind can support; the fallacy lints consume it. *)

type kind =
  | Test_results
  | Formal_proof
  | Review  (** Inspection, walkthrough or peer review. *)
  | Field_data  (** Operational history, incident statistics. *)
  | Analysis  (** Static/timing/hazard analysis outputs. *)
  | Simulation
  | Expert_judgement
  | Process_compliance  (** Conformance to a development standard. *)

(** The strength of claim an item of evidence is used to support.  A
    universal claim ("all executions meet deadlines") demands more than
    an existential or statistical one. *)
type claim_strength = Universal | Statistical | Existential

type t = {
  id : Id.t;
  kind : kind;
  description : string;
  source : string;  (** Provenance: document, tool, test campaign... *)
  strength : claim_strength;
      (** The strongest claim form the producer intends it to support. *)
}

val make :
  id:Id.t ->
  kind:kind ->
  ?source:string ->
  ?strength:claim_strength ->
  string ->
  t
(** [make ~id ~kind description] builds an item.  [source] defaults to
    ["unspecified"], [strength] to [Statistical]. *)

val supports_kind : kind -> claim_strength -> bool
(** [supports_kind k s] is whether evidence of kind [k] can, in
    principle, support a claim of strength [s].  Only {!Formal_proof}
    supports {!Universal} claims; {!Expert_judgement} supports only
    {!Existential} ones; everything else supports statistical and
    existential claims.  Deliberately coarse: it encodes the paper's
    example, not a full evidence theory. *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option
val all_kinds : kind list
val strength_to_string : claim_strength -> string
val strength_of_string : string -> claim_strength option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
