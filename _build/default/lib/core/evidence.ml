type kind =
  | Test_results
  | Formal_proof
  | Review
  | Field_data
  | Analysis
  | Simulation
  | Expert_judgement
  | Process_compliance

type claim_strength = Universal | Statistical | Existential

type t = {
  id : Id.t;
  kind : kind;
  description : string;
  source : string;
  strength : claim_strength;
}

let make ~id ~kind ?(source = "unspecified") ?(strength = Statistical)
    description =
  { id; kind; description; source; strength }

let supports_kind kind strength =
  match (kind, strength) with
  | Formal_proof, (Universal | Statistical | Existential) -> true
  | _, Universal -> false
  | Expert_judgement, Statistical -> false
  | Expert_judgement, Existential -> true
  | ( ( Test_results | Review | Field_data | Analysis | Simulation
      | Process_compliance ),
      (Statistical | Existential) ) ->
      true

let kind_to_string = function
  | Test_results -> "test-results"
  | Formal_proof -> "formal-proof"
  | Review -> "review"
  | Field_data -> "field-data"
  | Analysis -> "analysis"
  | Simulation -> "simulation"
  | Expert_judgement -> "expert-judgement"
  | Process_compliance -> "process-compliance"

let all_kinds =
  [
    Test_results;
    Formal_proof;
    Review;
    Field_data;
    Analysis;
    Simulation;
    Expert_judgement;
    Process_compliance;
  ]

let kind_of_string s =
  List.find_opt (fun k -> kind_to_string k = s) all_kinds

let strength_to_string = function
  | Universal -> "universal"
  | Statistical -> "statistical"
  | Existential -> "existential"

let strength_of_string = function
  | "universal" -> Some Universal
  | "statistical" -> Some Statistical
  | "existential" -> Some Existential
  | _ -> None

let equal a b =
  Id.equal a.id b.id && a.kind = b.kind
  && String.equal a.description b.description
  && String.equal a.source b.source
  && a.strength = b.strength

let pp ppf t =
  Format.fprintf ppf "%a [%s, %s] %s" Id.pp t.id (kind_to_string t.kind)
    (strength_to_string t.strength) t.description
