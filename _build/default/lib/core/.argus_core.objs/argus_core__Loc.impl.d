lib/core/loc.ml: Format
