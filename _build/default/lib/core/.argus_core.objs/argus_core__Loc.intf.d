lib/core/loc.mli: Format
