lib/core/evidence.mli: Format Id
