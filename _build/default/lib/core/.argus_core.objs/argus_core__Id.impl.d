lib/core/id.ml: Format Map Printf Set String
