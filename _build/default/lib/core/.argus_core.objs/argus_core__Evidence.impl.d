lib/core/evidence.ml: Format Id List String
