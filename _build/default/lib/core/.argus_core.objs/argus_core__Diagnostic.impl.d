lib/core/diagnostic.ml: Format Id Int List Loc String
