lib/core/json.ml: Buffer Char Float List Printf Stdlib String
