lib/core/lifecycle.mli: Format
