lib/core/textutil.mli:
