lib/core/prng.mli:
