lib/core/diagnostic.mli: Format Id Loc
