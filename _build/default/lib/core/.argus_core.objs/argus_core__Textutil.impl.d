lib/core/textutil.ml: Array Buffer Char Fun List String
