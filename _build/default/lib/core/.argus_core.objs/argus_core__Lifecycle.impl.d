lib/core/lifecycle.ml: Format List
