lib/core/json.mli:
