lib/core/id.mli: Format Map Set
