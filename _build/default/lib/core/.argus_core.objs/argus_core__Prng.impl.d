lib/core/prng.ml: Array Float Int64 List
