let is_alnum c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let words s =
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter (fun c -> if is_alnum c then Buffer.add_char buf c else flush ()) s;
  flush ();
  List.rev !out

let normalise_word w =
  let w = String.lowercase_ascii w in
  let n = String.length w in
  if n > 3 && w.[n - 1] = 's' && w.[n - 2] <> 's' then String.sub w 0 (n - 1)
  else w

let stop_words =
  [
    "a"; "an"; "the"; "is"; "are"; "was"; "were"; "be"; "been"; "being";
    "and"; "or"; "not"; "no"; "of"; "to"; "in"; "on"; "at"; "by"; "for";
    "with"; "from"; "that"; "this"; "these"; "those"; "it"; "its"; "as";
    "all"; "any"; "each"; "when"; "if"; "then"; "than"; "so"; "such";
    "will"; "shall"; "can"; "cannot"; "must"; "may"; "might"; "do"; "doe";
    "ha"; "has"; "have"; "had"; "which"; "who"; "whom"; "what"; "where";
  ]

let content_words s =
  words s
  |> List.map normalise_word
  |> List.filter (fun w -> not (List.mem w stop_words))

let sentences s =
  let out = ref [] in
  let buf = Buffer.create 64 in
  let flush () =
    let t = String.trim (Buffer.contents buf) in
    if t <> "" then out := t :: !out;
    Buffer.clear buf
  in
  String.iter
    (fun c ->
      match c with '.' | '!' | '?' -> flush () | c -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !out

let is_vowel c =
  match Char.lowercase_ascii c with
  | 'a' | 'e' | 'i' | 'o' | 'u' | 'y' -> true
  | _ -> false

let syllables w =
  let n = String.length w in
  if n = 0 then 0
  else begin
    let count = ref 0 in
    let prev_vowel = ref false in
    String.iter
      (fun c ->
        let v = is_vowel c in
        if v && not !prev_vowel then incr count;
        prev_vowel := v)
      w;
    (* A final silent 'e' usually does not add a syllable. *)
    if n > 2 && Char.lowercase_ascii w.[n - 1] = 'e' && not (is_vowel w.[n - 2])
    then decr count;
    max 1 !count
  end

let flesch_reading_ease text =
  let ws = words text in
  let ss = sentences text in
  match (ws, ss) with
  | [], _ | _, [] -> 100.0
  | _ ->
      let nw = float_of_int (List.length ws) in
      let ns = float_of_int (List.length ss) in
      let syl =
        float_of_int (List.fold_left (fun acc w -> acc + syllables w) 0 ws)
      in
      206.835 -. (1.015 *. (nw /. ns)) -. (84.6 *. (syl /. nw))

let levenshtein a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev = Array.init (lb + 1) Fun.id in
    let curr = Array.make (lb + 1) 0 in
    for i = 1 to la do
      curr.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        curr.(j) <-
          min (min (curr.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit curr 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

let symbolic_digraphs = [ "=>"; "->"; "|-"; "<->"; ":-"; "/\\"; "\\/" ]

let symbolic_utf8 =
  [ "\xc2\xac" (* ¬ *); "\xe2\x88\xa7" (* ∧ *); "\xe2\x88\xa8" (* ∨ *);
    "\xe2\x86\x92" (* → *); "\xe2\x87\x92" (* ⇒ *); "\xe2\x88\x80" (* ∀ *);
    "\xe2\x88\x83" (* ∃ *) ]

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  if nn = 0 || nn > nh then false
  else
    let rec go i =
      if i + nn > nh then false
      else if String.sub hay i nn = needle then true
      else go (i + 1)
    in
    go 0

(* An applied-term shape like [wcet(task_1, 250)]: an identifier directly
   followed by an opening parenthesis. *)
let has_applied_term s =
  let n = String.length s in
  let rec go i =
    if i >= n then false
    else if s.[i] = '(' && i > 0 && (is_alnum s.[i - 1] || s.[i - 1] = '_')
    then true
    else go (i + 1)
  in
  go 0

let contains_symbolic_notation s =
  List.exists (contains_substring s) symbolic_digraphs
  || List.exists (contains_substring s) symbolic_utf8
  || contains_substring s "&"
  || has_applied_term s
