(** A minimal JSON tree, printer and parser.

    The toolkit exchanges argument structures with other tools (the
    D-Case/SACM ecosystem the surveyed papers inhabit) through a JSON
    encoding; the sealed build has no JSON dependency, so this is a
    small self-contained implementation: UTF-8 strings are passed
    through uninterpreted, numbers are OCaml floats (integers print
    without a decimal point when exact), and the parser accepts exactly
    the JSON grammar with no extensions. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val int : int -> t
val member : string -> t -> t option
(** Object member lookup; [None] on non-objects too. *)

val to_string : ?indent:bool -> t -> string
(** Compact by default; [~indent:true] pretty-prints with two spaces. *)

val of_string : string -> (t, string) result
(** The error names the offset of the first problem. *)

val equal : t -> t -> bool
