type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let int i = Num (float_of_int i)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | Null | Bool _ | Num _ | Str _ | List _ -> None

let equal = Stdlib.( = )

(* --- Printing --- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_text f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string ?(indent = false) json =
  let buf = Buffer.create 256 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_text f)
    | Str s -> escape_into buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            go (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (name, value) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            escape_into buf name;
            Buffer.add_char buf ':';
            if indent then Buffer.add_char buf ' ';
            go (depth + 1) value)
          fields;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 json;
  Buffer.contents buf

(* --- Parsing --- *)

exception Err of int * string

let of_string text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Err (!pos, msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () =
    if !pos >= n then fail "unexpected end of input"
    else begin
      let c = text.[!pos] in
      incr pos;
      c
    end
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    let got = advance () in
    if got <> c then fail (Printf.sprintf "expected %C, found %C" c got)
  in
  let literal word value =
    String.iter (fun c -> expect c) word;
    value
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec scan () =
      match advance () with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          match advance () with
          | '"' -> Buffer.add_char buf '"'; scan ()
          | '\\' -> Buffer.add_char buf '\\'; scan ()
          | '/' -> Buffer.add_char buf '/'; scan ()
          | 'n' -> Buffer.add_char buf '\n'; scan ()
          | 't' -> Buffer.add_char buf '\t'; scan ()
          | 'r' -> Buffer.add_char buf '\r'; scan ()
          | 'b' -> Buffer.add_char buf '\b'; scan ()
          | 'f' -> Buffer.add_char buf '\012'; scan ()
          | 'u' ->
              let hex = Buffer.create 4 in
              for _ = 1 to 4 do
                Buffer.add_char hex (advance ())
              done;
              let code =
                try int_of_string ("0x" ^ Buffer.contents hex)
                with _ -> fail "bad \\u escape"
              in
              (* Encode the code point as UTF-8 (BMP only; surrogate
                 pairs are left as two replacement-encoded units). *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              scan ()
          | c -> fail (Printf.sprintf "bad escape \\%c" c))
      | c when Char.code c < 0x20 -> fail "control character in string"
      | c ->
          Buffer.add_char buf c;
          scan ()
    in
    scan ()
  in
  let parse_number () =
    let start = !pos in
    let accept f = match peek () with
      | Some c when f c -> incr pos; true
      | _ -> false
    in
    let digits () =
      let seen = ref false in
      while accept (fun c -> c >= '0' && c <= '9') do
        seen := true
      done;
      !seen
    in
    ignore (accept (fun c -> c = '-'));
    if not (digits ()) then fail "malformed number";
    if accept (fun c -> c = '.') then
      if not (digits ()) then fail "malformed number";
    if accept (fun c -> c = 'e' || c = 'E') then begin
      ignore (accept (fun c -> c = '+' || c = '-'));
      if not (digits ()) then fail "malformed number"
    end;
    float_of_string (String.sub text start (!pos - start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match advance () with
            | ',' -> items (v :: acc)
            | ']' -> List.rev (v :: acc)
            | c -> fail (Printf.sprintf "expected ',' or ']', found %C" c)
          in
          List (items [])
        end
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let name = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match advance () with
            | ',' -> fields ((name, v) :: acc)
            | '}' -> List.rev ((name, v) :: acc)
            | c -> fail (Printf.sprintf "expected ',' or '}', found %C" c)
          in
          Obj (fields [])
        end
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input after value";
    v
  with
  | v -> Ok v
  | exception Err (at, msg) -> Error (Printf.sprintf "offset %d: %s" at msg)
