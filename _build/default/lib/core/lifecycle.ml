type role =
  | Design_engineer
  | Stakeholder
  | Certifier
  | Operator
  | Field_safety_engineer
  | Maintainer
  | Manager
  | Mechanical_engineer

type purpose =
  | Operational_definition_of_safe
  | Risk_management_approach
  | Usage_assumptions
  | Evidence_claim_linkage
  | Key_safety_considerations

type phase = Concept | Development | Certification | Operation | Maintenance

let all_roles =
  [
    Design_engineer;
    Stakeholder;
    Certifier;
    Operator;
    Field_safety_engineer;
    Maintainer;
    Manager;
    Mechanical_engineer;
  ]

let all_purposes =
  [
    Operational_definition_of_safe;
    Risk_management_approach;
    Usage_assumptions;
    Evidence_claim_linkage;
    Key_safety_considerations;
  ]

let all_phases = [ Concept; Development; Certification; Operation; Maintenance ]

let logic_literacy = function
  | Design_engineer -> 0.85
  | Maintainer -> 0.75
  | Certifier -> 0.55
  | Field_safety_engineer -> 0.45
  | Stakeholder -> 0.30
  | Operator -> 0.25
  | Mechanical_engineer -> 0.25
  | Manager -> 0.15

let reads_in_phase role phase =
  match (role, phase) with
  | Design_engineer, (Concept | Development | Certification) -> true
  | Design_engineer, (Operation | Maintenance) -> false
  | Stakeholder, (Concept | Certification | Operation) -> true
  | Stakeholder, (Development | Maintenance) -> false
  | Certifier, (Certification | Maintenance) -> true
  | Certifier, (Concept | Development | Operation) -> false
  | Operator, (Operation | Maintenance) -> true
  | Operator, (Concept | Development | Certification) -> false
  | Field_safety_engineer, (Operation | Maintenance) -> true
  | Field_safety_engineer, (Concept | Development | Certification) -> false
  | Maintainer, Maintenance -> true
  | Maintainer, (Concept | Development | Certification | Operation) -> false
  | Manager, (Concept | Operation | Maintenance) -> true
  | Manager, (Development | Certification) -> false
  | Mechanical_engineer, (Concept | Development) -> true
  | Mechanical_engineer, (Certification | Operation | Maintenance) -> false

let role_to_string = function
  | Design_engineer -> "design-engineer"
  | Stakeholder -> "stakeholder"
  | Certifier -> "certifier"
  | Operator -> "operator"
  | Field_safety_engineer -> "field-safety-engineer"
  | Maintainer -> "maintainer"
  | Manager -> "manager"
  | Mechanical_engineer -> "mechanical-engineer"

let role_of_string s =
  List.find_opt (fun r -> role_to_string r = s) all_roles

let purpose_to_string = function
  | Operational_definition_of_safe -> "operational-definition-of-safe"
  | Risk_management_approach -> "risk-management-approach"
  | Usage_assumptions -> "usage-assumptions"
  | Evidence_claim_linkage -> "evidence-claim-linkage"
  | Key_safety_considerations -> "key-safety-considerations"

let phase_to_string = function
  | Concept -> "concept"
  | Development -> "development"
  | Certification -> "certification"
  | Operation -> "operation"
  | Maintenance -> "maintenance"

let pp_role ppf r = Format.pp_print_string ppf (role_to_string r)
let pp_purpose ppf p = Format.pp_print_string ppf (purpose_to_string p)
let pp_phase ppf p = Format.pp_print_string ppf (phase_to_string p)
