(** Source locations for the textual notations (the assurance-case DSL,
    the Toulmin notation and the Horn-clause programs).

    A {!pos} is a point in a named source; a {!t} is a span between two
    points.  Diagnostics carry spans so that checker output can point at
    the offending text. *)

type pos = { file : string; line : int; col : int }
(** 1-based line, 0-based column, as is conventional for compilers. *)

type t = { start : pos; stop : pos }

val pos : ?file:string -> line:int -> col:int -> unit -> pos
(** [pos ~line ~col ()] is a point; [file] defaults to ["<input>"]. *)

val make : pos -> pos -> t
val point : pos -> t
(** A zero-width span at a single position. *)

val dummy : t
(** Placeholder span for synthesised elements with no source text. *)

val is_dummy : t -> bool
val merge : t -> t -> t
(** Smallest span covering both arguments (assumes the same file). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Renders as [file:line.col-line.col], or [file:line.col] for points. *)
