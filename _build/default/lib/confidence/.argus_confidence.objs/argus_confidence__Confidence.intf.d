lib/confidence/confidence.mli: Argus_core Argus_gsn Argus_logic
