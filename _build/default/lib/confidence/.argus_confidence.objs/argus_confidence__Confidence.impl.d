lib/confidence/confidence.ml: Argus_core Argus_gsn Argus_logic List
