lib/proofgen/proofgen.ml: Argus_core Argus_gsn Argus_logic Array List Printf String
