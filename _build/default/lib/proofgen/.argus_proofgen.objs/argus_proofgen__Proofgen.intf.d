lib/proofgen/proofgen.mli: Argus_gsn Argus_logic
