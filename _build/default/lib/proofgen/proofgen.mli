(** Generating safety arguments from proofs (Basir, Denney & Fischer).

    The surveyed 2009–2012 papers derive GSN arguments automatically
    from natural-deduction proofs: each proof step becomes a goal, each
    rule application a strategy supported by the cited steps' goals, and
    each premise a leaf justified by an "asserted axiom" solution (the
    reviewer-assent axiom of Rushby's scheme).

    The authors themselves note that "the straightforward conversion of
    proofs into safety cases is far from satisfactory as they typically
    contain too many details" and call for abstraction; {!abstract} is
    that pass — it splices out single-child bookkeeping chains.  The
    bench harness measures the size reduction. *)

val generate :
  ?prefix:string -> Argus_logic.Natded.checked -> Argus_gsn.Structure.t
(** [generate checked] builds a GSN structure rooted at the proof's
    conclusion.  Every generated goal carries the step formula both as
    text (["<formula> holds"]) and as its [formal] annotation; premise
    goals are supported by solutions citing synthesised evidence items
    (["asserted premise"]).  The output is well-formed GSN: in
    particular, unlike the arguments the paper criticises, every goal's
    text is a proposition. *)

val abstract : Argus_gsn.Structure.t -> Argus_gsn.Structure.t
(** Collapse chains: a goal whose only support is one strategy with a
    single subgoal is spliced out (its parent adopts the subgoal).
    Idempotent on its own output.  Preserves well-formedness and the
    root. *)

val node_count : Argus_gsn.Structure.t -> int
(** Alias of {!Argus_gsn.Structure.size}, exported so callers measuring
    the abstraction benefit need not depend on the structure API. *)
