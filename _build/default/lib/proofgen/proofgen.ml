module Id = Argus_core.Id
module Evidence = Argus_core.Evidence
module Prop = Argus_logic.Prop
module Natded = Argus_logic.Natded
module Structure = Argus_gsn.Structure
module Node = Argus_gsn.Node

(* Steps that actually contribute to the conclusion: the citation cone
   of the final step. *)
let needed_steps proof =
  let arr = Array.of_list proof in
  let n = Array.length arr in
  let needed = Array.make n false in
  let rec visit k =
    if not needed.(k) then begin
      needed.(k) <- true;
      List.iter
        (fun i -> visit (i - 1))
        (Natded.citations arr.(k).Natded.rule)
    end
  in
  visit (n - 1);
  needed

let generate ?(prefix = "p") (checked : Natded.checked) =
  let proof = checked.Natded.proof in
  let arr = Array.of_list proof in
  let needed = needed_steps proof in
  let goal_id k = Id.of_string (Printf.sprintf "%s_G%d" prefix (k + 1)) in
  let strat_id k = Id.of_string (Printf.sprintf "%s_S%d" prefix (k + 1)) in
  let sol_id k = Id.of_string (Printf.sprintf "%s_Sn%d" prefix (k + 1)) in
  let ev_id k = Id.of_string (Printf.sprintf "%s_E%d" prefix (k + 1)) in
  let structure = ref Structure.empty in
  Array.iteri
    (fun k step ->
      if needed.(k) then begin
        let f = step.Natded.formula in
        let goal =
          Node.make ~id:(goal_id k) ~node_type:Node.Goal ~formal:f
            (Prop.to_string f ^ " holds")
        in
        structure := Structure.add_node goal !structure;
        match Natded.citations step.Natded.rule with
        | [] ->
            (* Premise or assumption: an asserted axiom, recorded as
               expert-judgement evidence awaiting reviewer assent. *)
            let ev =
              Evidence.make ~id:(ev_id k) ~kind:Evidence.Expert_judgement
                ~source:"formalisation"
                ~strength:Evidence.Existential
                (Printf.sprintf "Reviewer assent that %s may be assumed"
                   (Prop.to_string f))
            in
            let sol =
              Node.make ~id:(sol_id k) ~node_type:Node.Solution
                ~evidence:(ev_id k)
                "Asserted premise (reviewer assent required)"
            in
            structure := Structure.add_evidence ev !structure;
            structure := Structure.add_node sol !structure;
            structure :=
              Structure.connect Structure.Supported_by ~src:(goal_id k)
                ~dst:(sol_id k) !structure
        | cites ->
            let strat =
              Node.make ~id:(strat_id k) ~node_type:Node.Strategy
                (Printf.sprintf "Apply %s to step%s %s"
                   (Natded.rule_name step.Natded.rule)
                   (if List.length cites > 1 then "s" else "")
                   (String.concat ", " (List.map string_of_int cites)))
            in
            structure := Structure.add_node strat !structure;
            structure :=
              Structure.connect Structure.Supported_by ~src:(goal_id k)
                ~dst:(strat_id k) !structure;
            List.iter
              (fun i ->
                structure :=
                  Structure.connect Structure.Supported_by ~src:(strat_id k)
                    ~dst:(goal_id (i - 1)) !structure)
              cites
      end)
    arr;
  !structure

let node_count = Structure.size

(* A splice candidate: goal [g] whose only supporter is strategy [st]
   whose only child is goal [c] with children of its own; no contextual
   links on [st] or [c].  Splicing gives [g] the children of [c] and
   removes [st] and [c]. *)
let find_splice s =
  Structure.fold_nodes
    (fun n acc ->
      match acc with
      | Some _ -> acc
      | None -> (
          if n.Node.node_type <> Node.Goal then None
          else
            match Structure.children Structure.Supported_by n.Node.id s with
            | [ st_id ] -> (
                match Structure.find st_id s with
                | Some { Node.node_type = Node.Strategy; _ } -> (
                    match Structure.children Structure.Supported_by st_id s with
                    | [ c_id ] -> (
                        match Structure.find c_id s with
                        | Some { Node.node_type = Node.Goal; _ }
                          when Structure.children Structure.Supported_by c_id s
                               <> []
                               && Structure.context_of st_id s = []
                               && Structure.context_of c_id s = []
                               && List.length
                                    (Structure.parents Structure.Supported_by
                                       c_id s)
                                  = 1 ->
                            Some (n.Node.id, st_id, c_id)
                        | _ -> None)
                    | _ -> None)
                | _ -> None)
            | _ -> None))
    s None

let rec abstract s =
  match find_splice s with
  | None -> s
  | Some (g, st, c) ->
      let grandkids = Structure.children Structure.Supported_by c s in
      let s = Structure.remove_node st s in
      let s = Structure.remove_node c s in
      let s =
        List.fold_left
          (fun s kid ->
            Structure.connect Structure.Supported_by ~src:g ~dst:kid s)
          s grandkids
      in
      abstract s
