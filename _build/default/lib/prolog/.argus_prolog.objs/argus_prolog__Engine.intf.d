lib/prolog/engine.mli: Argus_logic Format Program Seq
