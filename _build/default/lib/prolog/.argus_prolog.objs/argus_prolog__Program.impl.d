lib/prolog/program.ml: Argus_logic Format Hashtbl List Printf String
