lib/prolog/engine.ml: Argus_logic Format Hashtbl List Program Seq
