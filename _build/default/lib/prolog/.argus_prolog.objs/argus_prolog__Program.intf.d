lib/prolog/program.mli: Argus_logic Format
