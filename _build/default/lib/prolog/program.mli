(** Horn-clause programs.

    The substrate for Figure 1 of the paper: a Prolog-style knowledge
    base from which the flawed Desert Bank conclusion is formally
    derivable.  Terms come from {!Argus_logic.Term}; this module adds
    clauses, programs, and a parser for the conventional syntax
    ([head :- body1, body2.] with [%] comments). *)

type clause = { head : Argus_logic.Term.t; body : Argus_logic.Term.t list }

type t = clause list
(** Clause order is program order; resolution tries clauses in order. *)

val fact : Argus_logic.Term.t -> clause
val rule : Argus_logic.Term.t -> Argus_logic.Term.t list -> clause

val clause_vars : clause -> string list
(** Variables of head and body, first occurrence order. *)

val predicates : t -> (string * int) list
(** Distinct (name, arity) pairs of clause heads, in program order. *)

val pp_clause : Format.formatter -> clause -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> (t, string) result
(** Parses a whole program.  Syntax: each clause ends with [.]; a rule
    separates head and comma-separated body with [:-]; [%] starts a
    comment to end of line.  Variables start with an upper-case letter
    or [_]. *)

val of_string_exn : string -> t
