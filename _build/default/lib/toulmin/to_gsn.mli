(** Rendering Toulmin arguments as GSN fragments.

    Inner arguments of the Haley framework live alongside GSN safety
    cases; this conversion lets one toolchain display both.  Mapping:
    the claim becomes a goal; the grounds become sub-goals supported by
    solutions citing synthesised evidence items; a statement warrant
    becomes a justification in context of the inference strategy; an
    argument warrant becomes a nested fragment supporting the strategy;
    rebuttals become assumptions in context of the claim (GSN has no
    counter-argument element, so a rebuttal is recorded as an assumption
    that it does not apply). *)

val convert : Toulmin.t -> Argus_gsn.Structure.t
(** The output is well-formed GSN (errors-free; text-heuristic warnings
    may occur for user-supplied wording).  Node ids are derived from the
    Toulmin labels, suffixed to stay unique. *)
