module Diagnostic = Argus_core.Diagnostic
module Prop = Argus_logic.Prop
module Natded = Argus_logic.Natded

type t = {
  requirement : Prop.t;
  outer : Natded.t;
  inner : (Prop.t * Toulmin.t) list;
}

let trust_assumptions t =
  match Natded.check t.outer with
  | Error _ -> []
  | Ok checked -> checked.Natded.premises

let check t =
  let out = ref [] in
  let add d = out := d :: !out in
  (match Natded.check t.outer with
  | Error ds ->
      add
        (Diagnostic.error ~code:"satisfaction/outer-invalid"
           "the formal outer argument does not check");
      List.iter add ds
  | Ok checked ->
      if not (Prop.equal checked.Natded.conclusion t.requirement) then
        add
          (Diagnostic.errorf ~code:"satisfaction/wrong-conclusion"
             "outer argument concludes %s, but the requirement is %s"
             (Prop.to_string checked.Natded.conclusion)
             (Prop.to_string t.requirement));
      let premises = checked.Natded.premises in
      List.iter
        (fun premise ->
          match
            List.find_opt (fun (p, _) -> Prop.equal p premise) t.inner
          with
          | None ->
              add
                (Diagnostic.errorf ~code:"satisfaction/unsupported-premise"
                   "trust assumption %s has no inner argument"
                   (Prop.to_string premise))
          | Some (_, inner) ->
              if inner.Toulmin.rebuttals <> [] then
                add
                  (Diagnostic.warningf
                     ~code:"satisfaction/rebutted-assumption"
                     "the inner argument for %s carries %d rebuttal(s)"
                     (Prop.to_string premise)
                     (List.length inner.Toulmin.rebuttals)))
        premises;
      List.iter
        (fun (p, _) ->
          if not (List.exists (Prop.equal p) premises) then
            add
              (Diagnostic.warningf ~code:"satisfaction/dangling-inner"
                 "inner argument for %s, which is not an outer premise"
                 (Prop.to_string p)))
        t.inner);
  List.iter
    (fun (_, inner) -> List.iter add (Toulmin.check inner))
    t.inner;
  Diagnostic.sort (List.rev !out)

let is_satisfied t = not (Diagnostic.has_errors (check t))
