(** Toulmin-style structured informal arguments, in the extended textual
    notation of Haley et al.

    The paper's Section III.K reproduces an "inner argument" written as:

    {v
    given grounds G2: "Valid credentials are given only to HR members"
    warranted by (
      given grounds G3: "Credentials are given in person"
      warranted by G4: "Credential administrators are honest and reliable"
      thus claim C1: "Credential administration is correct")
    thus claim P2: "HR credentials provided --> HR member"
    rebutted by R1: "HR member is dishonest"
    v}

    This module gives that notation an AST, a parser, a printer that
    round-trips, and structural checks. *)

type element = { label : string; text : string }

type t = {
  grounds : ground list;  (** At least one. *)
  warrant : warrant option;
  claim : element;
  rebuttals : element list;
}

and ground = Ground_statement of element | Ground_argument of t
and warrant = Warrant_statement of element | Warrant_argument of t

val element : string -> string -> element
(** [element label text]. *)

val make :
  grounds:ground list ->
  ?warrant:warrant ->
  ?rebuttals:element list ->
  element ->
  t
(** [make ~grounds claim].
    @raise Invalid_argument when [grounds] is empty. *)

val labels : t -> string list
(** Every label in the argument, in document order (with duplicates, if
    the argument erroneously repeats one). *)

val depth : t -> int
(** Nesting depth; a flat argument has depth 1. *)

val size : t -> int
(** Number of elements (grounds, warrants, claims, rebuttals) in the
    whole tree. *)

val claims : t -> element list
(** All claims, outermost first. *)

val check : t -> Argus_core.Diagnostic.t list
(** Structural lints, codes under ["toulmin/"]:
    - ["toulmin/duplicate-label"] (error) — a label used twice;
    - ["toulmin/empty-text"] (error) — an element with blank text;
    - ["toulmin/unwarranted"] (warning) — more than one ground but no
      warrant connecting them to the claim;
    - ["toulmin/self-support"] (error) — a nested argument whose claim
      text equals the text of a ground above it (circularity). *)

val pp : Format.formatter -> t -> unit
(** Prints the extended notation, indented; parses back with
    {!of_string}. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parser for the extended notation.  Keywords: [given grounds],
    [warranted by], [thus claim], [rebutted by]; elements are
    [LABEL: "text"]; nested arguments are parenthesised; multiple
    grounds or rebuttals are comma-separated. *)

val of_string_exn : string -> t
