(** Security requirements satisfaction arguments (Haley et al.).

    The framework the paper surveys in Section III.K: a {e formal outer
    argument} — a natural-deduction proof that the system's behavioural
    premises entail the security requirement — paired with {e informal
    inner arguments} — extended-Toulmin arguments supporting each trust
    assumption (premise) of the outer proof.

    The checker enforces exactly the discipline Haley et al. describe:
    the outer proof must check; every undischarged premise must have an
    inner argument; and each inner argument's claim is what supports the
    premise.  It also reports what formality cannot do (Section IV of
    the paper): a premise can be formally fine but rest on a rebutted or
    empty inner argument, which is surfaced as a warning, not proved
    absent. *)

type t = {
  requirement : Argus_logic.Prop.t;
      (** The security requirement the outer argument must conclude. *)
  outer : Argus_logic.Natded.t;  (** The formal outer proof. *)
  inner : (Argus_logic.Prop.t * Toulmin.t) list;
      (** Trust assumptions: one informal argument per outer premise. *)
}

val check : t -> Argus_core.Diagnostic.t list
(** Codes under ["satisfaction/"]:
    - ["satisfaction/outer-invalid"] (error) — the proof fails to check
      (the underlying natded diagnostics are included as well);
    - ["satisfaction/wrong-conclusion"] (error) — the proof concludes
      something other than the requirement;
    - ["satisfaction/unsupported-premise"] (error) — an undischarged
      premise with no inner argument;
    - ["satisfaction/dangling-inner"] (warning) — an inner argument for
      a formula that is not a premise of the outer proof;
    - ["satisfaction/rebutted-assumption"] (warning) — an inner argument
      carrying rebuttals (the trust assumption is contestable);
    - ["satisfaction/inner-issue"] (as reported) — structural problems
      inside an inner argument, from {!Toulmin.check}. *)

val is_satisfied : t -> bool
(** No errors (warnings allowed). *)

val trust_assumptions : t -> Argus_logic.Prop.t list
(** The undischarged premises of the outer proof — "the assumptions to
    be tested in the inner arguments". *)
