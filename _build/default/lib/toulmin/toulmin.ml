module Diagnostic = Argus_core.Diagnostic

type element = { label : string; text : string }

type t = {
  grounds : ground list;
  warrant : warrant option;
  claim : element;
  rebuttals : element list;
}

and ground = Ground_statement of element | Ground_argument of t
and warrant = Warrant_statement of element | Warrant_argument of t

let element label text = { label; text }

let make ~grounds ?warrant ?(rebuttals = []) claim =
  if grounds = [] then invalid_arg "Toulmin.make: no grounds";
  { grounds; warrant; claim; rebuttals }

let rec labels arg =
  let ground_labels = function
    | Ground_statement e -> [ e.label ]
    | Ground_argument a -> labels a
  in
  let warrant_labels = function
    | None -> []
    | Some (Warrant_statement e) -> [ e.label ]
    | Some (Warrant_argument a) -> labels a
  in
  List.concat_map ground_labels arg.grounds
  @ warrant_labels arg.warrant
  @ [ arg.claim.label ]
  @ List.map (fun e -> e.label) arg.rebuttals

let rec depth arg =
  let ground_depth = function
    | Ground_statement _ -> 0
    | Ground_argument a -> depth a
  in
  let warrant_depth = function
    | None | Some (Warrant_statement _) -> 0
    | Some (Warrant_argument a) -> depth a
  in
  1
  + List.fold_left
      (fun acc g -> max acc (ground_depth g))
      (warrant_depth arg.warrant)
      arg.grounds

let rec size arg =
  let ground_size = function
    | Ground_statement _ -> 1
    | Ground_argument a -> size a
  in
  let warrant_size = function
    | None -> 0
    | Some (Warrant_statement _) -> 1
    | Some (Warrant_argument a) -> size a
  in
  List.fold_left (fun acc g -> acc + ground_size g) 0 arg.grounds
  + warrant_size arg.warrant
  + 1
  + List.length arg.rebuttals

let rec claims arg =
  let ground_claims = function
    | Ground_statement _ -> []
    | Ground_argument a -> claims a
  in
  let warrant_claims = function
    | None | Some (Warrant_statement _) -> []
    | Some (Warrant_argument a) -> claims a
  in
  (arg.claim :: List.concat_map ground_claims arg.grounds)
  @ warrant_claims arg.warrant

let check arg =
  let out = ref [] in
  let add d = out := d :: !out in
  (* Duplicate labels. *)
  let tally = Hashtbl.create 16 in
  List.iter
    (fun l ->
      Hashtbl.replace tally l (1 + Option.value ~default:0 (Hashtbl.find_opt tally l)))
    (labels arg);
  Hashtbl.iter
    (fun l n ->
      if n > 1 then
        add
          (Diagnostic.errorf ~code:"toulmin/duplicate-label"
             "label %s is used %d times" l n))
    tally;
  (* Empty texts, unwarranted multi-ground steps, circular support. *)
  let rec walk ancestors_texts a =
    let check_element e =
      if String.trim e.text = "" then
        add
          (Diagnostic.errorf ~code:"toulmin/empty-text"
             "element %s has no text" e.label)
    in
    List.iter
      (function
        | Ground_statement e -> check_element e
        | Ground_argument _ -> ())
      a.grounds;
    (match a.warrant with
    | Some (Warrant_statement e) -> check_element e
    | Some (Warrant_argument _) | None -> ());
    check_element a.claim;
    List.iter check_element a.rebuttals;
    if List.length a.grounds > 1 && a.warrant = None then
      add
        (Diagnostic.warningf ~code:"toulmin/unwarranted"
           "claim %s rests on %d grounds with no warrant connecting them"
           a.claim.label (List.length a.grounds));
    let ground_texts =
      List.filter_map
        (function Ground_statement e -> Some e.text | Ground_argument _ -> None)
        a.grounds
    in
    let ancestors' = ground_texts @ ancestors_texts in
    let recurse sub =
      if List.mem sub.claim.text ancestors' then
        add
          (Diagnostic.errorf ~code:"toulmin/self-support"
             "nested claim %s restates a ground it is meant to support"
             sub.claim.label);
      walk ancestors' sub
    in
    List.iter
      (function Ground_statement _ -> () | Ground_argument sub -> recurse sub)
      a.grounds;
    match a.warrant with
    | Some (Warrant_argument sub) -> recurse sub
    | Some (Warrant_statement _) | None -> ()
  in
  walk [] arg;
  Diagnostic.sort (List.rev !out)

(* --- Printer --- *)

(* Quote a text, escaping only backslash and double quote — the two
   characters the tokeniser's string scanner treats specially. *)
let quote text =
  let buf = Buffer.create (String.length text + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' ->
          Buffer.add_char buf '\\';
          Buffer.add_char buf c
      | c -> Buffer.add_char buf c)
    text;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec pp ppf arg =
  let pp_element ppf e = Format.fprintf ppf "%s: %s" e.label (quote e.text) in
  let pp_ground ppf = function
    | Ground_statement e -> pp_element ppf e
    | Ground_argument a -> Format.fprintf ppf "(@[<v 2>@,%a@]@,)" pp a
  in
  let pp_sep ppf () = Format.fprintf ppf ",@ " in
  Format.fprintf ppf "@[<v>given grounds @[<v>%a@]"
    (Format.pp_print_list ~pp_sep pp_ground)
    arg.grounds;
  (match arg.warrant with
  | None -> ()
  | Some (Warrant_statement e) ->
      Format.fprintf ppf "@,warranted by %a" pp_element e
  | Some (Warrant_argument a) ->
      Format.fprintf ppf "@,warranted by (@[<v 2>@,%a@]@,)" pp a);
  Format.fprintf ppf "@,thus claim %a" pp_element arg.claim;
  (match arg.rebuttals with
  | [] -> ()
  | rs ->
      Format.fprintf ppf "@,rebutted by @[<v>%a@]"
        (Format.pp_print_list ~pp_sep pp_element)
        rs);
  Format.fprintf ppf "@]"

let to_string arg = Format.asprintf "%a" pp arg

(* --- Parser --- *)

exception Parse_error of string

type token =
  | Kw of string  (** given, grounds, warranted, by, thus, claim, rebutted *)
  | Label of string
  | Str of string
  | TLparen
  | TRparen
  | TComma
  | TColon

let keywords =
  [ "given"; "grounds"; "warranted"; "by"; "thus"; "claim"; "rebutted" ]

let is_label_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '-'

let tokenise s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) (TLparen :: acc)
      | ')' -> go (i + 1) (TRparen :: acc)
      | ',' -> go (i + 1) (TComma :: acc)
      | ':' -> go (i + 1) (TColon :: acc)
      | '"' ->
          let buf = Buffer.create 32 in
          let rec scan j =
            if j >= n then raise (Parse_error "unterminated string")
            else
              match s.[j] with
              | '"' -> j + 1
              | '\\' when j + 1 < n ->
                  Buffer.add_char buf s.[j + 1];
                  scan (j + 2)
              | c ->
                  Buffer.add_char buf c;
                  scan (j + 1)
          in
          let next = scan (i + 1) in
          go next (Str (Buffer.contents buf) :: acc)
      | c when is_label_char c ->
          let j = ref i in
          while !j < n && is_label_char s.[!j] do
            incr j
          done;
          let word = String.sub s i (!j - i) in
          let tok =
            if List.mem (String.lowercase_ascii word) keywords then
              Kw (String.lowercase_ascii word)
            else Label word
          in
          go !j (tok :: acc)
      | c -> raise (Parse_error (Printf.sprintf "unexpected character %C" c))
  in
  go 0 []

let parse tokens =
  let toks = ref tokens in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let advance () =
    match !toks with
    | [] -> raise (Parse_error "unexpected end of input")
    | t :: rest ->
        toks := rest;
        t
  in
  let expect_kw k =
    match advance () with
    | Kw k' when k = k' -> ()
    | _ -> raise (Parse_error (Printf.sprintf "expected keyword %S" k))
  in
  let p_element () =
    match advance () with
    | Label label -> (
        (match advance () with
        | TColon -> ()
        | _ -> raise (Parse_error "expected ':' after label"));
        match advance () with
        | Str text -> { label; text }
        | _ -> raise (Parse_error "expected a quoted string after ':'"))
    | _ -> raise (Parse_error "expected a labelled element")
  in
  let rec p_argument () =
    expect_kw "given";
    expect_kw "grounds";
    let grounds = p_ground_list [] in
    let warrant =
      match peek () with
      | Some (Kw "warranted") ->
          ignore (advance ());
          expect_kw "by";
          Some
            (match peek () with
            | Some TLparen ->
                ignore (advance ());
                let a = p_argument () in
                (match advance () with
                | TRparen -> ()
                | _ -> raise (Parse_error "expected ')'"));
                Warrant_argument a
            | _ -> Warrant_statement (p_element ()))
      | _ -> None
    in
    expect_kw "thus";
    expect_kw "claim";
    let claim = p_element () in
    let rebuttals =
      match peek () with
      | Some (Kw "rebutted") ->
          ignore (advance ());
          expect_kw "by";
          let rec loop acc =
            let e = p_element () in
            match peek () with
            | Some TComma ->
                ignore (advance ());
                loop (e :: acc)
            | _ -> List.rev (e :: acc)
          in
          loop []
      | _ -> []
    in
    { grounds; warrant; claim; rebuttals }
  and p_ground_list acc =
    let g =
      match peek () with
      | Some TLparen ->
          ignore (advance ());
          let a = p_argument () in
          (match advance () with
          | TRparen -> ()
          | _ -> raise (Parse_error "expected ')'"));
          Ground_argument a
      | _ -> Ground_statement (p_element ())
    in
    match peek () with
    | Some TComma ->
        ignore (advance ());
        p_ground_list (g :: acc)
    | _ -> List.rev (g :: acc)
  in
  let arg = p_argument () in
  (match !toks with
  | [] -> ()
  | _ -> raise (Parse_error "trailing input after argument"));
  arg

let of_string s =
  match parse (tokenise s) with
  | arg -> Ok arg
  | exception Parse_error msg -> Error msg

let of_string_exn s =
  match of_string s with Ok a -> a | Error msg -> failwith msg
