module Id = Argus_core.Id
module Evidence = Argus_core.Evidence
module Structure = Argus_gsn.Structure
module Node = Argus_gsn.Node

type state = {
  mutable structure : Structure.t;
  mutable used : Id.Set.t;
  gen : Id.Gen.t;
}

let fresh st base =
  let candidate =
    match Id.of_string_opt base with
    | Some id when not (Id.Set.mem id st.used) -> id
    | _ -> Id.Gen.fresh_avoiding st.gen st.used
  in
  st.used <- Id.Set.add candidate st.used;
  candidate

let add st node = st.structure <- Structure.add_node node st.structure

let connect st kind src dst =
  st.structure <- Structure.connect kind ~src ~dst st.structure

let rec convert_argument st (arg : Toulmin.t) =
  (* Returns the goal id for the argument's claim. *)
  let claim_id = fresh st arg.Toulmin.claim.Toulmin.label in
  add st
    (Node.make ~id:claim_id ~node_type:Node.Goal
       arg.Toulmin.claim.Toulmin.text);
  let strategy_id = fresh st (Id.to_string claim_id ^ "_S") in
  add st
    (Node.make ~id:strategy_id ~node_type:Node.Strategy
       "Inference from the stated grounds");
  connect st Structure.Supported_by claim_id strategy_id;
  (* Grounds. *)
  List.iter
    (fun ground ->
      match ground with
      | Toulmin.Ground_statement e ->
          let gid = fresh st e.Toulmin.label in
          let ev_id = fresh st (Id.to_string gid ^ "_E") in
          let sol_id = fresh st (Id.to_string gid ^ "_Sn") in
          add st
            (Node.make ~id:gid ~node_type:Node.Goal
               (e.Toulmin.text ^ " (holds)"));
          st.structure <-
            Structure.add_evidence
              (Evidence.make ~id:ev_id ~kind:Evidence.Expert_judgement
                 ~source:"Toulmin grounds" ~strength:Evidence.Existential
                 e.Toulmin.text)
              st.structure;
          add st
            (Node.make ~id:sol_id ~node_type:Node.Solution ~evidence:ev_id
               ("Grounds: " ^ e.Toulmin.text));
          connect st Structure.Supported_by strategy_id gid;
          connect st Structure.Supported_by gid sol_id
      | Toulmin.Ground_argument sub ->
          let sub_claim = convert_argument st sub in
          connect st Structure.Supported_by strategy_id sub_claim)
    arg.Toulmin.grounds;
  (* Warrant. *)
  (match arg.Toulmin.warrant with
  | None -> ()
  | Some (Toulmin.Warrant_statement e) ->
      let jid = fresh st e.Toulmin.label in
      add st
        (Node.make ~id:jid ~node_type:Node.Justification e.Toulmin.text);
      connect st Structure.In_context_of strategy_id jid
  | Some (Toulmin.Warrant_argument sub) ->
      let sub_claim = convert_argument st sub in
      connect st Structure.Supported_by strategy_id sub_claim);
  (* Rebuttals. *)
  List.iter
    (fun (e : Toulmin.element) ->
      let aid = fresh st e.Toulmin.label in
      add st
        (Node.make ~id:aid ~node_type:Node.Assumption
           ("It is assumed the rebuttal does not apply: " ^ e.Toulmin.text));
      connect st Structure.In_context_of claim_id aid)
    arg.Toulmin.rebuttals;
  claim_id

let convert arg =
  let st =
    {
      structure = Structure.empty;
      used = Id.Set.empty;
      gen = Id.Gen.create ~prefix:"t" ();
    }
  in
  ignore (convert_argument st arg);
  st.structure
