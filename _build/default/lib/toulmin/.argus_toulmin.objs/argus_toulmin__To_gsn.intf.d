lib/toulmin/to_gsn.mli: Argus_gsn Toulmin
