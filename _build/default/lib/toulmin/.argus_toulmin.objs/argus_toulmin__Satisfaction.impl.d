lib/toulmin/satisfaction.ml: Argus_core Argus_logic List Toulmin
