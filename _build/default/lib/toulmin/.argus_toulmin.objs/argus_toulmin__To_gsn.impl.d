lib/toulmin/to_gsn.ml: Argus_core Argus_gsn List Toulmin
