lib/toulmin/satisfaction.mli: Argus_core Argus_logic Toulmin
