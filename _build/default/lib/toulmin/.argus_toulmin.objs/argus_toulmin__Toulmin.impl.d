lib/toulmin/toulmin.ml: Argus_core Buffer Format Hashtbl List Option Printf String
