lib/toulmin/toulmin.mli: Argus_core Format
