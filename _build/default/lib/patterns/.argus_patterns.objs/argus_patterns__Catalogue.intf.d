lib/patterns/catalogue.mli: Pattern
