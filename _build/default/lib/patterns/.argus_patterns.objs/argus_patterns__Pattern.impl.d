lib/patterns/pattern.ml: Argus_core Argus_gsn Buffer List Printf String
