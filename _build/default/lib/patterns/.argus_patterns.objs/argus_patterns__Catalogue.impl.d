lib/patterns/catalogue.ml: Argus_core Argus_gsn List Pattern
