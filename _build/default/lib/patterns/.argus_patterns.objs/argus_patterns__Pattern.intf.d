lib/patterns/pattern.mli: Argus_core Argus_gsn
