(** A catalogue of classic safety-case patterns.

    The surveyed pattern papers (Denney & Pai; Matsuno & Taguchi)
    motivate formalised patterns with the published catalogues that
    practitioners instantiate — hazard avoidance, functional
    decomposition, ALARP, diverse evidence.  This module provides those
    staples as ready {!Pattern.t} values, each definition-checked
    ({!Pattern.check_pattern} returns no errors) and instantiable
    through the typed engine.

    They also serve as the workload for the Section VI.D experiment and
    the CLI demos: realistic patterns with list, enum and ranged-integer
    parameters. *)

val hazard_avoidance : Pattern.t
(** Top claim argued hazard-by-hazard over a list parameter [hazards];
    string parameter [system]. *)

val functional_decomposition : Pattern.t
(** Safety argued function-by-function over list parameter [functions];
    string parameter [system]. *)

val alarp : Pattern.t
(** The ALARP pattern: intolerable risks absent, tolerable risks
    reduced as low as reasonably practicable.  List parameters
    [intolerable_hazards] and [tolerable_hazards]; integer parameter
    [risk_budget] constrained to 1–1000 (events per 1e9 hours). *)

val diverse_evidence : Pattern.t
(** One claim supported by two diverse evidence legs; enum parameter
    [primary_kind] over analysis/test/field-experience, string
    parameters [claim] and [secondary]. *)

val all : (string * Pattern.t) list
(** Name-indexed catalogue. *)

val find : string -> Pattern.t option
