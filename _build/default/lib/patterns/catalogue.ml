module Structure = Argus_gsn.Structure
module Node = Argus_gsn.Node
module Evidence = Argus_core.Evidence
module Id = Argus_core.Id

let ev id text = Evidence.make ~id:(Id.of_string id) ~kind:Evidence.Analysis text

let hazard_avoidance =
  Pattern.make ~name:"hazard-avoidance"
    ~description:
      "The system is acceptably safe because each identified hazard is \
       acceptably managed (Kelly's classic catalogue entry)."
    ~params:
      [
        { Pattern.pname = "system"; ptype = Pattern.Pstring };
        { Pattern.pname = "hazards"; ptype = Pattern.Plist Pattern.Pstring };
      ]
    ~replicate:[ ("G_hazard", "hazards") ]
    (Structure.of_nodes
       ~links:
         [
           (Structure.Supported_by, "G_top", "S_hazards");
           (Structure.Supported_by, "S_hazards", "G_hazard");
           (Structure.Supported_by, "G_hazard", "Sn_hazard");
           (Structure.In_context_of, "G_top", "C_defn");
           (Structure.In_context_of, "S_hazards", "J_hazid");
         ]
       ~evidence:[ ev "E_hazard" "hazard mitigation evidence" ]
       [
         Node.goal "G_top" "{system} is acceptably safe to operate";
         Node.strategy "S_hazards" "Argument over each identified hazard";
         Node.goal "G_hazard" "Hazard {hazards} is acceptably managed";
         Node.solution ~evidence:"E_hazard" "Sn_hazard"
           "Mitigation evidence for {hazards}";
         Node.context "C_defn" "Definition and operating context of {system}";
         Node.justification "J_hazid"
           "The hazard list is complete per the hazard identification study";
       ])

let functional_decomposition =
  Pattern.make ~name:"functional-decomposition"
    ~description:
      "Safety argued over the functions the system provides; each \
       function's contribution is shown acceptably safe."
    ~params:
      [
        { Pattern.pname = "system"; ptype = Pattern.Pstring };
        { Pattern.pname = "functions"; ptype = Pattern.Plist Pattern.Pstring };
      ]
    ~replicate:[ ("G_fn", "functions") ]
    (Structure.of_nodes
       ~links:
         [
           (Structure.Supported_by, "G_top", "S_fn");
           (Structure.Supported_by, "S_fn", "G_fn");
           (Structure.Supported_by, "G_fn", "Sn_fn");
           (Structure.In_context_of, "S_fn", "A_indep");
         ]
       ~evidence:[ ev "E_fn" "per-function safety analysis" ]
       [
         Node.goal "G_top" "{system} is acceptably safe";
         Node.strategy "S_fn" "Argument by decomposition over system functions";
         Node.goal "G_fn" "Function '{functions}' is acceptably safe";
         Node.solution ~evidence:"E_fn" "Sn_fn"
           "Safety analysis of function '{functions}'";
         Node.assumption "A_indep"
           "Functions do not interact hazardously (interaction analysis holds)";
       ])

let alarp =
  Pattern.make ~name:"alarp"
    ~description:
      "The ALARP pattern: intolerable risks are absent; remaining risks \
       are reduced as low as reasonably practicable within the risk \
       budget."
    ~params:
      [
        { Pattern.pname = "system"; ptype = Pattern.Pstring };
        {
          Pattern.pname = "intolerable_hazards";
          ptype = Pattern.Plist Pattern.Pstring;
        };
        {
          Pattern.pname = "tolerable_hazards";
          ptype = Pattern.Plist Pattern.Pstring;
        };
        {
          Pattern.pname = "risk_budget";
          ptype = Pattern.Pint { min = Some 1; max = Some 1000 };
        };
      ]
    ~replicate:
      [ ("G_intol", "intolerable_hazards"); ("G_tol", "tolerable_hazards") ]
    (Structure.of_nodes
       ~links:
         [
           (Structure.Supported_by, "G_top", "S_alarp");
           (Structure.Supported_by, "S_alarp", "G_intol");
           (Structure.Supported_by, "S_alarp", "G_tol");
           (Structure.Supported_by, "G_intol", "Sn_intol");
           (Structure.Supported_by, "G_tol", "Sn_tol");
           (Structure.In_context_of, "G_top", "C_budget");
         ]
       ~evidence:
         [
           ev "E_intol" "elimination evidence";
           ev "E_tol" "ALARP justification";
         ]
       [
         Node.goal "G_top" "Residual risk of {system} is tolerable and ALARP";
         Node.strategy "S_alarp"
           "Argument over the intolerable and tolerable risk classes";
         Node.goal "G_intol"
           "Intolerable hazard {intolerable_hazards} has been eliminated";
         Node.goal "G_tol"
           "Risk from {tolerable_hazards} is reduced as low as reasonably \
            practicable";
         Node.solution ~evidence:"E_intol" "Sn_intol"
           "Elimination evidence for {intolerable_hazards}";
         Node.solution ~evidence:"E_tol" "Sn_tol"
           "Cost-benefit justification for {tolerable_hazards}";
         Node.context "C_budget"
           "Risk budget: {risk_budget} events per 10^9 operating hours";
       ])

let diverse_evidence =
  Pattern.make ~name:"diverse-evidence"
    ~description:
      "A claim supported by two diverse legs of evidence, reducing \
       common-cause doubt in any single kind."
    ~params:
      [
        { Pattern.pname = "claim"; ptype = Pattern.Pstring };
        {
          Pattern.pname = "primary_kind";
          ptype = Pattern.Penum [ "analysis"; "test"; "field-experience" ];
        };
        { Pattern.pname = "secondary"; ptype = Pattern.Pstring };
      ]
    (Structure.of_nodes
       ~links:
         [
           (Structure.Supported_by, "G_claim", "S_diverse");
           (Structure.Supported_by, "S_diverse", "G_primary");
           (Structure.Supported_by, "S_diverse", "G_secondary");
           (Structure.Supported_by, "G_primary", "Sn_primary");
           (Structure.Supported_by, "G_secondary", "Sn_secondary");
           (Structure.In_context_of, "S_diverse", "J_diverse");
         ]
       ~evidence:
         [ ev "E_primary" "primary leg"; ev "E_secondary" "secondary leg" ]
       [
         Node.goal "G_claim" "{claim} holds";
         Node.strategy "S_diverse" "Argument by diverse evidence legs";
         Node.goal "G_primary" "{claim} is shown by {primary_kind}";
         Node.goal "G_secondary" "{claim} is corroborated by {secondary}";
         Node.solution ~evidence:"E_primary" "Sn_primary"
           "Primary {primary_kind} results";
         Node.solution ~evidence:"E_secondary" "Sn_secondary"
           "Corroborating results: {secondary}";
         Node.justification "J_diverse"
           "The legs have no shared mechanism of failure";
       ])

let all =
  [
    ("hazard-avoidance", hazard_avoidance);
    ("functional-decomposition", functional_decomposition);
    ("alarp", alarp);
    ("diverse-evidence", diverse_evidence);
  ]

let find name = List.assoc_opt name all
