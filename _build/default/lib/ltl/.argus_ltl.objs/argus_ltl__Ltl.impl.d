lib/ltl/ltl.ml: Array Format Hashtbl List Printf Stdlib String
