lib/ltl/ltl.mli: Format
