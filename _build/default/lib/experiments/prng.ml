(* Re-export: the generator lives in the core library so that other
   subsystems (e.g. bounded LTL refutation in argus.kaos) can share it. *)
include Argus_core.Prng
