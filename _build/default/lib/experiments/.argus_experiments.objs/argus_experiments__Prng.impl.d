lib/experiments/prng.ml: Argus_core
