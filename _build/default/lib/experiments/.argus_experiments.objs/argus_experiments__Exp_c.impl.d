lib/experiments/exp_c.ml: Argus_core Float Format List Prng Stats
