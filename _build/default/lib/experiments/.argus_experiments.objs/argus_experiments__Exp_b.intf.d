lib/experiments/exp_b.mli: Format Stats
