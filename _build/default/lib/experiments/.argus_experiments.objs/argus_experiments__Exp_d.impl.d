lib/experiments/exp_d.ml: Argus_core Argus_gsn Argus_patterns Format List Printf Prng Stats
