lib/experiments/exp_c.mli: Argus_core Format
