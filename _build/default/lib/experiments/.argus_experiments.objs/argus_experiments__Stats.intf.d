lib/experiments/stats.mli:
