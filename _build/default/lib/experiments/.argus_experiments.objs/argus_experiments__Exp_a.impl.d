lib/experiments/exp_a.ml: Argus_fallacy Argus_logic Format List Printf Prng Stats
