lib/experiments/exp_e.ml: Argus_confidence Argus_core Argus_gsn Argus_logic Array Float Format List Printf Prng Result Stats String
