lib/experiments/stats.ml: Array Float List
