lib/experiments/exp_e.mli: Format
