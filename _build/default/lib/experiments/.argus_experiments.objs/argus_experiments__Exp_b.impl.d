lib/experiments/exp_b.ml: Format List Prng Stats
