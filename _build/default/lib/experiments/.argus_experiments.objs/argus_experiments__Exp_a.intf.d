lib/experiments/exp_a.mli: Format Stats
