lib/experiments/exp_d.mli: Format Stats
