(** Descriptive and inferential statistics for the experiment harness.

    Section VI proposes between-group comparisons (review time with and
    without a formal-fallacy duty, defect rates with and without tool
    checking) and agreement measures (evidence-sufficiency judgments
    across assessors); this module provides the corresponding
    estimators: summary statistics with confidence intervals, Welch's
    t-test, Cohen's d, and Fleiss' kappa. *)

val mean : float list -> float
(** 0 on an empty list. *)

val variance : float list -> float
(** Unbiased sample variance; 0 when fewer than two points. *)

val stddev : float list -> float
val median : float list -> float
val percentile : float -> float list -> float
(** Linear interpolation; argument in [0, 100]. *)

val ci95 : float list -> float * float
(** Normal-approximation 95% confidence interval for the mean. *)

type t_test = {
  t : float;
  df : float;  (** Welch–Satterthwaite degrees of freedom. *)
  p : float;  (** Two-sided p-value. *)
}

val welch_t : float list -> float list -> t_test
(** Welch's unequal-variances t-test.  With degenerate inputs (fewer
    than two points, or both variances zero) returns [t = 0], [df = 1],
    [p = 1]. *)

val cohens_d : float list -> float list -> float
(** Standardised mean difference (pooled SD); 0 when degenerate. *)

val pearson_r : (float * float) list -> float
(** Sample correlation coefficient; 0 when degenerate (fewer than two
    points or zero variance on either axis). *)

val fleiss_kappa : int array array -> float
(** [fleiss_kappa m] where [m.(subject).(category)] counts the raters
    assigning the subject to the category.  All subjects must have the
    same total number of raters (>= 2).  1 = perfect agreement, 0 =
    chance.  @raise Invalid_argument on ragged input. *)

val student_t_cdf : float -> float -> float
(** [student_t_cdf t df] — CDF of Student's t, via the regularised
    incomplete beta function; exposed for tests. *)
