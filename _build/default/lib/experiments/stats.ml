let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
      /. (n -. 1.0)

let stddev xs = sqrt (variance xs)

let percentile p xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
      let n = List.length sorted in
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      let frac = rank -. float_of_int lo in
      let v i = List.nth sorted (max 0 (min (n - 1) i)) in
      ((1.0 -. frac) *. v lo) +. (frac *. v hi)

let median xs = percentile 50.0 xs

let ci95 xs =
  let m = mean xs in
  match List.length xs with
  | 0 | 1 -> (m, m)
  | n ->
      let se = stddev xs /. sqrt (float_of_int n) in
      (m -. (1.96 *. se), m +. (1.96 *. se))

(* Regularised incomplete beta function by Lentz's continued fraction
   (Numerical Recipes' betacf/betai). *)
let rec betai a b x =
  if x < 0.0 || x > 1.0 then invalid_arg "betai: x outside [0,1]";
  if x = 0.0 then 0.0
  else if x = 1.0 then 1.0
  else
    let lbeta =
      let rec lgamma z =
        (* Lanczos approximation. *)
        let g = 7.0 in
        let c =
          [|
            0.99999999999980993; 676.5203681218851; -1259.1392167224028;
            771.32342877765313; -176.61502916214059; 12.507343278686905;
            -0.13857109526572012; 9.9843695780195716e-6;
            1.5056327351493116e-7;
          |]
        in
        if z < 0.5 then
          log (Float.pi /. sin (Float.pi *. z)) -. lgamma_pos (1.0 -. z) g c
        else lgamma_pos z g c
      and lgamma_pos z g c =
        let z = z -. 1.0 in
        let x = ref c.(0) in
        for i = 1 to 8 do
          x := !x +. (c.(i) /. (z +. float_of_int i))
        done;
        let t = z +. g +. 0.5 in
        (0.5 *. log (2.0 *. Float.pi))
        +. ((z +. 0.5) *. log t)
        -. t +. log !x
      in
      lgamma a +. lgamma b -. lgamma (a +. b)
    in
    let front = exp ((a *. log x) +. (b *. log (1.0 -. x)) -. lbeta) in
    let betacf a b x =
      let qab = a +. b and qap = a +. 1.0 and qam = a -. 1.0 in
      let c = ref 1.0 in
      let d = ref (1.0 -. (qab *. x /. qap)) in
      if Float.abs !d < 1e-30 then d := 1e-30;
      d := 1.0 /. !d;
      let h = ref !d in
      (try
         for m = 1 to 200 do
           let mf = float_of_int m in
           let m2 = 2.0 *. mf in
           let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
           d := 1.0 +. (aa *. !d);
           if Float.abs !d < 1e-30 then d := 1e-30;
           c := 1.0 +. (aa /. !c);
           if Float.abs !c < 1e-30 then c := 1e-30;
           d := 1.0 /. !d;
           h := !h *. !d *. !c;
           let aa =
             -.(a +. mf) *. (qab +. mf) *. x
             /. ((a +. m2) *. (qap +. m2))
           in
           d := 1.0 +. (aa *. !d);
           if Float.abs !d < 1e-30 then d := 1e-30;
           c := 1.0 +. (aa /. !c);
           if Float.abs !c < 1e-30 then c := 1e-30;
           d := 1.0 /. !d;
           let del = !d *. !c in
           h := !h *. del;
           if Float.abs (del -. 1.0) < 3e-12 then raise Exit
         done
       with Exit -> ());
      !h
    in
    if x <= (a +. 1.0) /. (a +. b +. 2.0) then front *. betacf a b x /. a
    else 1.0 -. betai b a (1.0 -. x)

let student_t_cdf t df =
  if df <= 0.0 then invalid_arg "student_t_cdf: df must be positive";
  let x = df /. (df +. (t *. t)) in
  let tail = 0.5 *. betai (df /. 2.0) 0.5 x in
  if t >= 0.0 then 1.0 -. tail else tail

type t_test = { t : float; df : float; p : float }

let welch_t xs ys =
  let nx = List.length xs and ny = List.length ys in
  if nx < 2 || ny < 2 then { t = 0.0; df = 1.0; p = 1.0 }
  else
    let vx = variance xs and vy = variance ys in
    let nxf = float_of_int nx and nyf = float_of_int ny in
    let sx = vx /. nxf and sy = vy /. nyf in
    if sx +. sy <= 0.0 then { t = 0.0; df = 1.0; p = 1.0 }
    else
      let t = (mean xs -. mean ys) /. sqrt (sx +. sy) in
      let df =
        ((sx +. sy) ** 2.0)
        /. ((sx ** 2.0 /. (nxf -. 1.0)) +. (sy ** 2.0 /. (nyf -. 1.0)))
      in
      let p = 2.0 *. (1.0 -. student_t_cdf (Float.abs t) df) in
      { t; df; p = Float.max 0.0 (Float.min 1.0 p) }

let cohens_d xs ys =
  let nx = List.length xs and ny = List.length ys in
  if nx < 2 || ny < 2 then 0.0
  else
    let pooled =
      sqrt
        (((float_of_int (nx - 1) *. variance xs)
         +. (float_of_int (ny - 1) *. variance ys))
        /. float_of_int (nx + ny - 2))
    in
    if pooled = 0.0 then 0.0 else (mean xs -. mean ys) /. pooled

let pearson_r pairs =
  match pairs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let xs = List.map fst pairs and ys = List.map snd pairs in
      let mx = mean xs and my = mean ys in
      let cov =
        List.fold_left
          (fun acc (x, y) -> acc +. ((x -. mx) *. (y -. my)))
          0.0 pairs
      in
      let sx =
        sqrt (List.fold_left (fun a x -> a +. ((x -. mx) ** 2.0)) 0.0 xs)
      in
      let sy =
        sqrt (List.fold_left (fun a y -> a +. ((y -. my) ** 2.0)) 0.0 ys)
      in
      if sx = 0.0 || sy = 0.0 then 0.0 else cov /. (sx *. sy)

let fleiss_kappa m =
  let n_subjects = Array.length m in
  if n_subjects = 0 then invalid_arg "fleiss_kappa: no subjects";
  let n_categories = Array.length m.(0) in
  let raters = Array.fold_left ( + ) 0 m.(0) in
  if raters < 2 then invalid_arg "fleiss_kappa: need at least two raters";
  Array.iter
    (fun row ->
      if Array.length row <> n_categories then
        invalid_arg "fleiss_kappa: ragged matrix";
      if Array.fold_left ( + ) 0 row <> raters then
        invalid_arg "fleiss_kappa: unequal rater counts")
    m;
  let nf = float_of_int n_subjects and rf = float_of_int raters in
  (* Per-subject agreement. *)
  let p_i row =
    let sum_sq =
      Array.fold_left (fun acc k -> acc +. (float_of_int k ** 2.0)) 0.0 row
    in
    (sum_sq -. rf) /. (rf *. (rf -. 1.0))
  in
  let p_bar = Array.fold_left (fun acc row -> acc +. p_i row) 0.0 m /. nf in
  (* Category proportions. *)
  let p_e =
    let total = nf *. rf in
    let cat j =
      Array.fold_left (fun acc row -> acc +. float_of_int row.(j)) 0.0 m
      /. total
    in
    let acc = ref 0.0 in
    for j = 0 to n_categories - 1 do
      acc := !acc +. (cat j ** 2.0)
    done;
    !acc
  in
  if 1.0 -. p_e < 1e-12 then 1.0 else (p_bar -. p_e) /. (1.0 -. p_e)
