type library = IEEE_Xplore | ACM_DL | Springer_Link | Google_Scholar
type search_term = Safety_term | Security_term

type candidate = {
  id : int;
  title : string;
  library : library;
  found_by : search_term;
  hints_assurance_argument : bool;
  about_evidence_item_only : bool;
  formal_in_other_sense : bool;
  documents_claim_support : bool;
  symbolic_or_deductive_linkage : bool;
}

let all_libraries = [ IEEE_Xplore; ACM_DL; Springer_Link; Google_Scholar ]

let library_to_string = function
  | IEEE_Xplore -> "IEEE Xplore"
  | ACM_DL -> "ACM Digital Library"
  | Springer_Link -> "Springer Link"
  | Google_Scholar -> "Google Scholar"

let phase1_selects c =
  c.hints_assurance_argument
  && (not c.about_evidence_item_only)
  && not c.formal_in_other_sense

let phase2_selects c =
  c.documents_claim_support && c.symbolic_or_deductive_linkage

(* --- The synthetic corpus ---

   Identity layout:
     ids 1..5    shared safety/security papers (the Haley cluster and the
                 privacy-arguments paper, plausibly hit by both terms);
     ids 6..20   the remaining surveyed papers (safety term);
     ids 21..54  safety papers passing phase 1 but failing phase 2;
     ids 55..72  security papers passing phase 1 but failing phase 2;
     ids >= 100  phase-1 rejects (three per library and term, one for
                 each exclusion criterion).

   Phase-one occurrence plan (reproducing Table I):
     safety:    IEEE ids 6..17 (12), ACM ids 18..34 (17),
                Springer ids 1..4 and 35..54 (24), Scholar id 5 plus the
                seven cross-library duplicates 6..12 (8); 61 occurrences
                over 54 unique ids.
     security:  IEEE ids 1..5 and 55..62 (13), ACM ids 63..69 (7),
                Springer ids 70..71 (2), Scholar id 72 (1). *)

let surveyed_titles =
  (* id -> title of a real surveyed paper, for ids 1..20. *)
  let security_ids =
    [ "haley2006"; "haley2008"; "tun2010"; "yu2011"; "tun2012" ]
  in
  let safety_ids =
    List.filter_map
      (fun p ->
        if List.mem p.Paper.key security_ids then None else Some p.Paper.key)
      Paper.selected
  in
  let keys = security_ids @ safety_ids in
  List.mapi
    (fun i key ->
      match Paper.find key with
      | Some p -> (i + 1, p.Paper.title)
      | None -> (i + 1, key))
    keys

let title_of_id id =
  match List.assoc_opt id surveyed_titles with
  | Some t -> t
  | None -> Printf.sprintf "Candidate result %d" id

let make ~id ~library ~found_by ~p2 () =
  {
    id;
    title = title_of_id id;
    library;
    found_by;
    hints_assurance_argument = true;
    about_evidence_item_only = false;
    formal_in_other_sense = false;
    documents_claim_support = p2;
    symbolic_or_deductive_linkage = p2;
  }

let reject ~id ~library ~found_by ~reason () =
  {
    id;
    title = Printf.sprintf "Excluded result %d" id;
    library;
    found_by;
    hints_assurance_argument = reason <> `No_hint;
    about_evidence_item_only = reason = `Evidence_only;
    formal_in_other_sense = reason = `Other_sense;
    documents_claim_support = false;
    symbolic_or_deductive_linkage = false;
  }

let range lo hi = List.init (hi - lo + 1) (fun i -> lo + i)

let corpus =
  let surveyed id = id <= 20 in
  let safety lib ids =
    List.map
      (fun id ->
        make ~id ~library:lib ~found_by:Safety_term ~p2:(surveyed id) ())
      ids
  in
  let security lib ids =
    List.map
      (fun id ->
        make ~id ~library:lib ~found_by:Security_term ~p2:(surveyed id) ())
      ids
  in
  (* Safety search, phase-1 selections: 12 + 17 + 24 + 8 occurrences over
     54 unique ids, with ids 6..12 found in both IEEE and Scholar. *)
  safety IEEE_Xplore (range 6 17)
  @ safety ACM_DL (range 18 34)
  @ safety Springer_Link (range 1 4 @ range 35 54)
  @ safety Google_Scholar (5 :: range 6 12)
  (* Security search, phase-1 selections: 13 + 7 + 2 + 1 over 23 unique
     ids, no cross-library duplicates. *)
  @ security IEEE_Xplore (5 :: (range 1 4 @ range 55 62))
  @ security ACM_DL (range 63 69)
  @ security Springer_Link (range 70 71)
  @ security Google_Scholar [ 72 ]
  (* Phase-1 rejects: one per criterion, per library and term. *)
  @ List.concat_map
      (fun lib ->
        List.concat_map
          (fun term ->
            let base =
              100
              + (10
                 * (match lib with
                   | IEEE_Xplore -> 0
                   | ACM_DL -> 1
                   | Springer_Link -> 2
                   | Google_Scholar -> 3))
              + (match term with Safety_term -> 0 | Security_term -> 5)
            in
            [
              reject ~id:base ~library:lib ~found_by:term ~reason:`No_hint ();
              reject ~id:(base + 1) ~library:lib ~found_by:term
                ~reason:`Evidence_only ();
              reject ~id:(base + 2) ~library:lib ~found_by:term
                ~reason:`Other_sense ();
            ])
          [ Safety_term; Security_term ])
      all_libraries

let run_phase1 candidates = List.filter phase1_selects candidates
let run_phase2 candidates = List.filter phase2_selects (run_phase1 candidates)

type table1_row = { library : library; safety : int; security : int }

type table1 = {
  rows : table1_row list;
  unique_total : int;
  unique_safety : int;
  unique_security : int;
}

module Iset = Set.Make (Int)

let table1 candidates =
  let selected = run_phase1 candidates in
  let count lib term =
    List.length
      (List.filter
         (fun (c : candidate) -> c.library = lib && c.found_by = term)
         selected)
  in
  let rows =
    List.map
      (fun lib ->
        {
          library = lib;
          safety = count lib Safety_term;
          security = count lib Security_term;
        })
      all_libraries
  in
  let ids term =
    List.filter (fun c -> c.found_by = term) selected
    |> List.map (fun c -> c.id)
    |> Iset.of_list
  in
  let s = ids Safety_term and sec = ids Security_term in
  {
    rows;
    unique_total = Iset.cardinal (Iset.union s sec);
    unique_safety = Iset.cardinal s;
    unique_security = Iset.cardinal sec;
  }

let selected_after_phase2 candidates =
  run_phase2 candidates
  |> List.map (fun c -> c.id)
  |> Iset.of_list
  |> Iset.cardinal

let pp_table1 ppf t =
  Format.fprintf ppf "%-22s %8s %10s@." "Digital library" "Safety" "Security";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-22s %8d %10d@."
        (library_to_string r.library)
        r.safety r.security)
    t.rows;
  Format.fprintf ppf "Unique results (%d total): %d safety, %d security@."
    t.unique_total t.unique_safety t.unique_security
