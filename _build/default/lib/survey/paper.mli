(** The twenty surveyed papers, encoded.

    Section III of the paper characterises each selected paper against
    five research questions: what is formalised and how it is used,
    whether the formalism replaces or augments informal argument, how it
    affects argument structure, what benefits are claimed and with what
    evidence, and what drawbacks are noted.  This module encodes those
    characterisations so that every quantified statement the paper makes
    about its survey ("six of the twenty...", "eleven of the selected
    papers...") is a computable query — see {!Queries}. *)

(** What part of the argument the proposal formalises.  The distinctions
    matter for the paper's counts: the Basir/Denney generated arguments
    and Tolchinsky's non-monotonic dialogue games are {e not} among the
    "eleven papers suggesting formalising argument content into
    symbolic, deductive logic". *)
type artefact =
  | Syntax  (** Argument structure rules (Denney–Pai, Matsuno). *)
  | Content_symbolic_deductive
      (** Claims/premises in symbolic, deductive logic. *)
  | Content_nonmonotonic
      (** Non-monotonic logic for dialogue games (Tolchinsky). *)
  | Argument_generated_from_proof
      (** The argument is produced from an external proof (Basir et
          al.); the argument itself is not the formalised object. *)
  | Metadata_annotations  (** Denney–Naylor–Pai enrichment. *)
  | Pattern_structure  (** Formalised pattern structure. *)
  | Pattern_parameters  (** Typed placeholder instantiation. *)

(** Relationship of the formal artefact to informal argument
    (research question 2). *)
type relationship =
  | Replaces_informal
  | Augments_informal
  | Generated_from_proof
  | Informal_first_then_formalise
  | Unclear

type domain = Safety | Security | Privacy | Dependability

(** Strength of the evidence offered for claimed benefits.  No surveyed
    paper offers more than a thin case study — the paper's headline
    observation. *)
type evidence_strength = No_evidence | Worked_example | Thin_case_study

type proposal = {
  key : string;  (** Citation key, e.g. ["basir2009"]. *)
  reference : int;  (** The paper's bracketed reference number. *)
  authors : string;
  year : int;
  title : string;
  survey_group : string;  (** Which Section III subsection covers it. *)
  domain : domain;
  artefacts : artefact list;
  relationship : relationship;
  mentions_mechanical_verification : bool;
      (** Explicitly proposes machine-checking the formalised content. *)
  implies_mechanical_benefit : bool;
      (** Makes or implies the claim that mechanical validation
          justifies greater confidence (the "six of twenty"). *)
  claimed_benefits : string list;
  evidence_of_benefit : evidence_strength;
  drawbacks_noted : string list;
  acknowledges_hypothesis : bool;
      (** Candidly states that benefit is an unvalidated hypothesis —
          true only of Rushby, per the paper's conclusion. *)
}

val selected : proposal list
(** The twenty selected papers, in reference order. *)

val find : string -> proposal option
val pp : Format.formatter -> proposal -> unit
