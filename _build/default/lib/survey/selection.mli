(** The Section III systematic-survey selection pipeline.

    The paper searched four digital libraries with two terms, screened
    titles and abstracts against three exclusion criteria (phase one),
    then read full texts against two more (phase two).  The digital
    libraries cannot be re-queried offline, so {!corpus} is a synthetic
    bibliographic corpus calibrated such that running the {e real}
    pipeline over it reproduces Table I: 12/13 (IEEE), 17/7 (ACM), 24/2
    (Springer), 8/1 (Google Scholar) phase-one selections per
    safety/security search, 72 unique results (54 safety, 23 security),
    and twenty phase-two selections.

    What is reproduced faithfully is the {e procedure}: criteria
    filtering, cross-library de-duplication, cross-term overlap, and the
    two-phase funnel.  Swap {!corpus} for live search exports and the
    pipeline runs unchanged. *)

type library = IEEE_Xplore | ACM_DL | Springer_Link | Google_Scholar
type search_term = Safety_term | Security_term

type candidate = {
  id : int;  (** Identity across libraries: same id = same paper. *)
  title : string;
  library : library;
  found_by : search_term;
  (* Phase-one screening facts (title + abstract): *)
  hints_assurance_argument : bool;
  about_evidence_item_only : bool;
  formal_in_other_sense : bool;
  (* Phase-two screening facts (full text): *)
  documents_claim_support : bool;
  symbolic_or_deductive_linkage : bool;
}

val all_libraries : library list
val library_to_string : library -> string

val phase1_selects : candidate -> bool
(** Title/abstract screening: keep iff it hints at an assurance
    argument, is not merely about an evidence item, and does not use
    'formal' in another sense. *)

val phase2_selects : candidate -> bool
(** Full-text screening: keep iff it documents support for a
    dependability claim and discusses a symbolic/deductive linkage from
    evidence to claim.  Implies nothing about phase 1; the pipeline
    applies them in order. *)

val corpus : candidate list
(** The synthetic corpus (including phase-one rejects). *)

val run_phase1 : candidate list -> candidate list
val run_phase2 : candidate list -> candidate list

type table1_row = {
  library : library;
  safety : int;  (** Phase-one selections from the safety search. *)
  security : int;
}

type table1 = {
  rows : table1_row list;
  unique_total : int;  (** De-duplicated across libraries and terms. *)
  unique_safety : int;  (** De-duplicated, found by the safety term. *)
  unique_security : int;
}

val table1 : candidate list -> table1
(** Phase-one counts per library and term, plus unique totals, computed
    from the candidate list by the real pipeline. *)

val selected_after_phase2 : candidate list -> int
(** Number of unique papers surviving both phases. *)

val pp_table1 : Format.formatter -> table1 -> unit
