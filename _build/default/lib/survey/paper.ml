type artefact =
  | Syntax
  | Content_symbolic_deductive
  | Content_nonmonotonic
  | Argument_generated_from_proof
  | Metadata_annotations
  | Pattern_structure
  | Pattern_parameters

type relationship =
  | Replaces_informal
  | Augments_informal
  | Generated_from_proof
  | Informal_first_then_formalise
  | Unclear

type domain = Safety | Security | Privacy | Dependability
type evidence_strength = No_evidence | Worked_example | Thin_case_study

type proposal = {
  key : string;
  reference : int;
  authors : string;
  year : int;
  title : string;
  survey_group : string;
  domain : domain;
  artefacts : artefact list;
  relationship : relationship;
  mentions_mechanical_verification : bool;
  implies_mechanical_benefit : bool;
  claimed_benefits : string list;
  evidence_of_benefit : evidence_strength;
  drawbacks_noted : string list;
  acknowledges_hypothesis : bool;
}

let selected =
  [
    {
      key = "basir2009";
      reference = 6;
      authors = "Basir, Denney & Fischer";
      year = 2009;
      title = "Deriving safety cases from automatically constructed proofs";
      survey_group = "Automatically-generated arguments";
      domain = Safety;
      artefacts = [ Argument_generated_from_proof ];
      relationship = Generated_from_proof;
      mentions_mechanical_verification = false;
      implies_mechanical_benefit = false;
      claimed_benefits =
        [
          "generated argument makes proofs more readable";
          "gives the information needed to trust the proof evidence";
        ];
      evidence_of_benefit = Worked_example;
      drawbacks_noted =
        [ "straightforward conversion contains too many details" ];
      acknowledges_hypothesis = false;
    };
    {
      key = "basir2010";
      reference = 7;
      authors = "Basir, Denney & Fischer";
      year = 2010;
      title =
        "Deriving safety cases for hierarchical structure in model-based \
         development";
      survey_group = "Automatically-generated arguments";
      domain = Safety;
      artefacts = [ Argument_generated_from_proof ];
      relationship = Generated_from_proof;
      mentions_mechanical_verification = false;
      implies_mechanical_benefit = false;
      claimed_benefits = [ "generated argument makes proofs more readable" ];
      evidence_of_benefit = Worked_example;
      drawbacks_noted = [];
      acknowledges_hypothesis = false;
    };
    {
      key = "bishop1995";
      reference = 8;
      authors = "Bishop & Bloomfield";
      year = 1995;
      title = "The SHIP safety case approach";
      survey_group = "Deterministic arguments";
      domain = Safety;
      artefacts = [ Content_symbolic_deductive ];
      relationship = Replaces_informal;
      mentions_mechanical_verification = false;
      implies_mechanical_benefit = false;
      claimed_benefits = [];
      evidence_of_benefit = No_evidence;
      drawbacks_noted = [];
      acknowledges_hypothesis = false;
    };
    {
      key = "brunel2012";
      reference = 9;
      authors = "Brunel & Cazin";
      year = 2012;
      title =
        "Formal verification of a safety argumentation and application to a \
         complex UAV system";
      survey_group = "Arguments in LTL";
      domain = Safety;
      artefacts = [ Content_symbolic_deductive ];
      relationship = Informal_first_then_formalise;
      mentions_mechanical_verification = true;
      implies_mechanical_benefit = true;
      claimed_benefits =
        [
          "automatic validation of the argumentation";
          "tackles the problems of validity and completion";
        ];
      evidence_of_benefit = Worked_example;
      drawbacks_noted =
        [
          "presentation must convince a certification authority, not a \
           temporal-logic specialist";
        ];
      acknowledges_hypothesis = false;
    };
    {
      key = "denney2012";
      reference = 10;
      authors = "Denney, Pai & Pohl";
      year = 2012;
      title =
        "Heterogeneous aviation safety cases: integrating the formal and \
         the non-formal";
      survey_group = "Automatically-generated arguments";
      domain = Safety;
      artefacts = [ Argument_generated_from_proof ];
      relationship = Generated_from_proof;
      mentions_mechanical_verification = false;
      implies_mechanical_benefit = false;
      claimed_benefits =
        [
          "automatic generation of argument from proof is feasible";
          "manual argument writing becomes unmanageable during iteration";
        ];
      evidence_of_benefit = Worked_example;
      drawbacks_noted = [];
      acknowledges_hypothesis = false;
    };
    {
      key = "denney2013patterns";
      reference = 11;
      authors = "Denney & Pai";
      year = 2013;
      title = "A formal basis for safety case patterns";
      survey_group = "Formally-specified syntax";
      domain = Safety;
      artefacts = [ Syntax; Pattern_structure ];
      relationship = Augments_informal;
      mentions_mechanical_verification = false;
      implies_mechanical_benefit = true;
      claimed_benefits =
        [
          "automated instantiation, composition and transformation";
          "reduction in safety case creation/management effort";
          "improved assurance from well-formed instances";
        ];
      evidence_of_benefit = No_evidence;
      drawbacks_noted = [];
      acknowledges_hypothesis = false;
    };
    {
      key = "denney2013hicases";
      reference = 12;
      authors = "Denney, Pai & Whiteside";
      year = 2013;
      title = "Hierarchical safety cases";
      survey_group = "Formally-specified syntax";
      domain = Safety;
      artefacts = [ Syntax ];
      relationship = Augments_informal;
      mentions_mechanical_verification = false;
      implies_mechanical_benefit = false;
      claimed_benefits = [ "enables fold/unfold display and editing tools" ];
      evidence_of_benefit = Worked_example;
      drawbacks_noted = [];
      acknowledges_hypothesis = false;
    };
    {
      key = "denney2014query";
      reference = 13;
      authors = "Denney, Naylor & Pai";
      year = 2014;
      title = "Querying safety cases";
      survey_group = "Annotated informal arguments";
      domain = Safety;
      artefacts = [ Metadata_annotations ];
      relationship = Augments_informal;
      mentions_mechanical_verification = false;
      implies_mechanical_benefit = false;
      claimed_benefits = [ "rich structured querying of argument contents" ];
      evidence_of_benefit = Worked_example;
      drawbacks_noted = [ "cost of creating the necessary ontologies" ];
      acknowledges_hypothesis = false;
    };
    {
      key = "forder1992";
      reference = 14;
      authors = "Forder";
      year = 1992;
      title = "A safety argument manager";
      survey_group = "A safety argument manager";
      domain = Safety;
      artefacts = [ Content_symbolic_deductive ];
      relationship = Unclear;
      mentions_mechanical_verification = false;
      implies_mechanical_benefit = false;
      claimed_benefits =
        [ "automatic detection of inconsistencies in models and arguments" ];
      evidence_of_benefit = No_evidence;
      drawbacks_noted = [];
      acknowledges_hypothesis = false;
    };
    {
      key = "haley2006";
      reference = 15;
      authors = "Haley, Moffett, Laney & Nuseibeh";
      year = 2006;
      title = "A framework for security requirements engineering";
      survey_group = "Security requirements satisfaction arguments";
      domain = Security;
      artefacts = [ Content_symbolic_deductive ];
      relationship = Replaces_informal;
      mentions_mechanical_verification = false;
      implies_mechanical_benefit = false;
      claimed_benefits = [];
      evidence_of_benefit = No_evidence;
      drawbacks_noted = [];
      acknowledges_hypothesis = false;
    };
    {
      key = "haley2008";
      reference = 16;
      authors = "Haley, Laney, Moffett & Nuseibeh";
      year = 2008;
      title =
        "Security requirements engineering: a framework for representation \
         and analysis";
      survey_group = "Security requirements satisfaction arguments";
      domain = Security;
      artefacts = [ Content_symbolic_deductive ];
      relationship = Replaces_informal;
      mentions_mechanical_verification = false;
      implies_mechanical_benefit = true;
      claimed_benefits =
        [
          "formal outer argument reveals which domain properties are \
           critical for security";
          "the more rigorous the process, the more confidence";
        ];
      evidence_of_benefit = Worked_example;
      drawbacks_noted =
        [
          "expressive logics cost tractability and decidability";
          "industrial partners did not see the utility of formal outer \
           arguments";
        ];
      acknowledges_hypothesis = false;
    };
    {
      key = "matsuno2011";
      reference = 17;
      authors = "Matsuno & Taguchi";
      year = 2011;
      title = "Parameterised argument structure in GSN patterns";
      survey_group = "Formalised GSN patterns";
      domain = Safety;
      artefacts = [ Syntax; Pattern_structure; Pattern_parameters ];
      relationship = Augments_informal;
      mentions_mechanical_verification = false;
      implies_mechanical_benefit = true;
      claimed_benefits =
        [
          "safeguard against misuses of patterns";
          "automated checking of instantiation type consistency";
        ];
      evidence_of_benefit = No_evidence;
      drawbacks_noted = [];
      acknowledges_hypothesis = false;
    };
    {
      key = "matsuno2014";
      reference = 18;
      authors = "Matsuno";
      year = 2014;
      title = "A design and implementation of an assurance case language";
      survey_group = "Formalised GSN patterns";
      domain = Safety;
      artefacts = [ Syntax; Pattern_structure; Pattern_parameters ];
      relationship = Augments_informal;
      mentions_mechanical_verification = false;
      implies_mechanical_benefit = true;
      claimed_benefits =
        [
          "machine checking helps avoid misuses of parameterised \
           expressions and detects errors early";
        ];
      evidence_of_benefit = No_evidence;
      drawbacks_noted = [];
      acknowledges_hypothesis = false;
    };
    {
      key = "rushby2010";
      reference = 19;
      authors = "Rushby";
      year = 2010;
      title = "Formalism in safety cases";
      survey_group = "Partial formalisation into proofs";
      domain = Safety;
      artefacts = [ Content_symbolic_deductive ];
      relationship = Informal_first_then_formalise;
      mentions_mechanical_verification = true;
      implies_mechanical_benefit = false;
      claimed_benefits =
        [
          "mechanised calculation preserves expert human review for the \
           elements that truly require it";
        ];
      evidence_of_benefit = No_evidence;
      drawbacks_noted =
        [ "worth depends on whether unsoundness is a significant hazard" ];
      acknowledges_hypothesis = true;
    };
    {
      key = "rushby2013";
      reference = 20;
      authors = "Rushby";
      year = 2013;
      title = "Logic and epistemology in safety cases";
      survey_group = "Partial formalisation into proofs";
      domain = Safety;
      artefacts = [ Content_symbolic_deductive ];
      relationship = Unclear;
      mentions_mechanical_verification = true;
      implies_mechanical_benefit = false;
      claimed_benefits =
        [
          "evaluation of large safety cases benefits from automated \
           assistance";
          "what-if exploration of assumptions";
        ];
      evidence_of_benefit = No_evidence;
      drawbacks_noted = [ "proposals are deliberately speculative" ];
      acknowledges_hypothesis = true;
    };
    {
      key = "tun2012";
      reference = 22;
      authors = "Tun, Bandara, Price, Yu, Haley, Omoronyia & Nuseibeh";
      year = 2012;
      title =
        "Privacy arguments: analysing selective disclosure requirements for \
         mobile applications";
      survey_group = "Policy checking";
      domain = Privacy;
      artefacts = [ Content_symbolic_deductive ];
      relationship = Informal_first_then_formalise;
      mentions_mechanical_verification = true;
      implies_mechanical_benefit = false;
      claimed_benefits =
        [
          "checking information availability, denial and explanation \
           properties";
        ];
      evidence_of_benefit = Worked_example;
      drawbacks_noted = [];
      acknowledges_hypothesis = false;
    };
    {
      key = "tolchinsky2012";
      reference = 23;
      authors = "Tolchinsky, Modgil, Atkinson, McBurney & Cortes";
      year = 2012;
      title = "Deliberation dialogues for reasoning about safety critical \
               actions";
      survey_group = "Decision support";
      domain = Safety;
      artefacts = [ Content_nonmonotonic ];
      relationship = Unclear;
      mentions_mechanical_verification = false;
      implies_mechanical_benefit = false;
      claimed_benefits = [ "on-line decision support via dialogue games" ];
      evidence_of_benefit = Worked_example;
      drawbacks_noted = [ "limits of the non-monotonic logic tools" ];
      acknowledges_hypothesis = false;
    };
    {
      key = "tun2010";
      reference = 24;
      authors = "Tun, Yu, Haley & Nuseibeh";
      year = 2010;
      title = "Model-based argument analysis for evolving security \
               requirements";
      survey_group = "Security requirements satisfaction arguments";
      domain = Security;
      artefacts = [ Content_symbolic_deductive ];
      relationship = Replaces_informal;
      mentions_mechanical_verification = false;
      implies_mechanical_benefit = false;
      claimed_benefits = [];
      evidence_of_benefit = Worked_example;
      drawbacks_noted = [];
      acknowledges_hypothesis = false;
    };
    {
      key = "yu2011";
      reference = 25;
      authors = "Yu, Tun, Tedeschi, Franqueira & Nuseibeh";
      year = 2011;
      title =
        "OpenArgue: supporting argumentation to evolve secure software \
         systems";
      survey_group = "Security requirements satisfaction arguments";
      domain = Security;
      artefacts = [ Content_symbolic_deductive ];
      relationship = Replaces_informal;
      mentions_mechanical_verification = false;
      implies_mechanical_benefit = false;
      claimed_benefits =
        [ "informal and formal arguments are helpful to domain experts" ];
      evidence_of_benefit = Thin_case_study;
      drawbacks_noted = [];
      acknowledges_hypothesis = false;
    };
    {
      key = "sokolsky2011";
      reference = 39;
      authors = "Sokolsky, Lee & Heimdahl";
      year = 2011;
      title =
        "Challenges in the regulatory approval of medical cyber-physical \
         systems";
      survey_group = "First-order logic";
      domain = Safety;
      artefacts = [ Content_symbolic_deductive ];
      relationship = Unclear;
      mentions_mechanical_verification = false;
      implies_mechanical_benefit = true;
      claimed_benefits =
        [
          "formalisation will be able to capture logical fallacies, which \
           are common in assurance cases";
        ];
      evidence_of_benefit = No_evidence;
      drawbacks_noted = [];
      acknowledges_hypothesis = false;
    };
  ]

let find key = List.find_opt (fun p -> p.key = key) selected

let pp ppf p =
  Format.fprintf ppf "[%d] %s (%d): %s" p.reference p.authors p.year p.title
