let artefact_text = function
  | Paper.Syntax -> "formalised argument syntax"
  | Paper.Content_symbolic_deductive ->
      "argument content in symbolic, deductive logic"
  | Paper.Content_nonmonotonic -> "non-monotonic dialogue-game logic"
  | Paper.Argument_generated_from_proof ->
      "argument generated from an external proof"
  | Paper.Metadata_annotations -> "typed metadata annotations"
  | Paper.Pattern_structure -> "formalised pattern structure"
  | Paper.Pattern_parameters -> "typed pattern parameters"

let relationship_text = function
  | Paper.Replaces_informal -> "replaces informal argumentation"
  | Paper.Augments_informal -> "augments an informal argument"
  | Paper.Generated_from_proof -> "generated from a proof"
  | Paper.Informal_first_then_formalise ->
      "informal argument first, then formalised"
  | Paper.Unclear -> "relationship to informal argument unclear"

let evidence_text = function
  | Paper.No_evidence -> "no evidence offered"
  | Paper.Worked_example -> "a worked example only"
  | Paper.Thin_case_study -> "a case study reported without assessable detail"

let pp_list ppf ~header items =
  match items with
  | [] -> ()
  | items ->
      Format.fprintf ppf "  %s:@." header;
      List.iter (fun i -> Format.fprintf ppf "    - %s@." i) items

let pp_paper ppf (p : Paper.proposal) =
  Format.fprintf ppf "[%d] %s (%d)@." p.Paper.reference p.Paper.authors
    p.Paper.year;
  Format.fprintf ppf "  %s@." p.Paper.title;
  Format.fprintf ppf "  formalises: %s@."
    (String.concat "; " (List.map artefact_text p.Paper.artefacts));
  Format.fprintf ppf "  %s@." (relationship_text p.Paper.relationship);
  if p.Paper.mentions_mechanical_verification then
    Format.fprintf ppf "  proposes mechanical verification of the formalism@.";
  if p.Paper.implies_mechanical_benefit then
    Format.fprintf ppf
      "  implies mechanical validation justifies greater confidence@.";
  pp_list ppf ~header:"claimed benefits" p.Paper.claimed_benefits;
  Format.fprintf ppf "  evidence of benefit: %s@."
    (evidence_text p.Paper.evidence_of_benefit);
  pp_list ppf ~header:"drawbacks noted" p.Paper.drawbacks_noted;
  if p.Paper.acknowledges_hypothesis then
    Format.fprintf ppf
      "  candidly acknowledges the benefit is an unvalidated hypothesis@."

let groups () =
  (* First-occurrence group order, members in reference order. *)
  let order = ref [] in
  let members = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let g = p.Paper.survey_group in
      if not (Hashtbl.mem members g) then begin
        Hashtbl.add members g [];
        order := g :: !order
      end;
      Hashtbl.replace members g (Hashtbl.find members g @ [ p ]))
    Paper.selected;
  List.rev_map (fun g -> (g, Hashtbl.find members g)) !order

let pp_all ppf () =
  List.iter
    (fun (group, members) ->
      Format.fprintf ppf "== %s ==@.@." group;
      List.iter
        (fun p ->
          pp_paper ppf p;
          Format.pp_print_newline ppf ())
        members)
    (groups ())
