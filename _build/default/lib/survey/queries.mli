(** Queries over the encoded survey: every quantified claim the paper
    makes about its twenty selected papers, as a function.

    Each function's expected value (the number the paper reports) is in
    its documentation; the bench harness prints computed-vs-reported and
    EXPERIMENTS.md records them. *)

val total_selected : unit -> int
(** 20 — "Phase two yielded twenty selected papers". *)

val implying_mechanical_benefit : unit -> Paper.proposal list
(** 6 — "Six of the twenty papers make or imply claims that mechanical
    validation will justify greater confidence" (Section IV). *)

val proposing_symbolic_deductive_content : unit -> Paper.proposal list
(** 11 — "Eleven of the selected papers suggest formalising all or part
    of the content of arguments into symbolic, deductive logic"
    (Section V.B). *)

val mentioning_mechanical_verification : unit -> Paper.proposal list
(** 4 — "Four of these explicitly mention mechanical verification of
    the formalised argument" (Section V.B).  A subset of the eleven. *)

val informal_first_then_formalise : unit -> Paper.proposal list
(** 3 — "Three of our selected papers proposed constructing arguments
    first in informal form and then formalising them" (Section VI.B). *)

val formalising_graphical_syntax : unit -> Paper.proposal list
(** 4 — "Four of the selected papers suggest formalising the syntax of
    graphical arguments whose elements contain natural language text"
    (Section V.A). *)

val formalising_pattern_structure : unit -> Paper.proposal list
(** 3 — "Three of our selected papers proposed formalising argument
    pattern structure" (Section VI.D). *)

val formalising_pattern_parameters : unit -> Paper.proposal list
(** Within those, 2 — "Two also propose formalising pattern parameters"
    (Section VI.D, citing Matsuno's two papers). *)

val with_substantial_evidence : unit -> Paper.proposal list
(** 0 — "none supplies substantial empirical evidence" (Section VII). *)

val acknowledging_hypothesis : unit -> Paper.proposal list
(** Rushby's 2 papers — "only Rushby correctly and candidly acknowledges
    that any benefit ... is a hypothesis" (Section VII). *)

val report : unit -> (string * int * int) list
(** (description, computed, reported-by-paper) triples for every query
    above — the bench harness prints this table. *)
