lib/survey/paper.mli: Format
