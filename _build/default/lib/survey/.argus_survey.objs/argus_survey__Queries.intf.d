lib/survey/queries.mli: Paper
