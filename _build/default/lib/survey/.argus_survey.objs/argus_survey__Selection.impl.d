lib/survey/selection.ml: Format Int List Paper Printf Set
