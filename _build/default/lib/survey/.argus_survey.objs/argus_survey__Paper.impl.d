lib/survey/paper.ml: Format List
