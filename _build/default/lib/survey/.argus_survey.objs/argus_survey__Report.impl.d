lib/survey/report.ml: Format Hashtbl List Paper String
