lib/survey/report.mli: Format Paper
