lib/survey/queries.ml: List Paper
