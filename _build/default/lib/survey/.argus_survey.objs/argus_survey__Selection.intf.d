lib/survey/selection.mli: Format
