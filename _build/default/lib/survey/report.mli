(** Rendering the survey's per-paper characterisations.

    Section III of the paper answers five research questions for each
    selected paper; {!pp_paper} renders the encoded answers in that
    style, grouped as the paper groups them ({!pp_all}).  This is what
    [argus survey --papers] prints. *)

val pp_paper : Format.formatter -> Paper.proposal -> unit

val groups : unit -> (string * Paper.proposal list) list
(** Papers grouped by survey subsection, in reference order. *)

val pp_all : Format.formatter -> unit -> unit
