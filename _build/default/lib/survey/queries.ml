let selected = Paper.selected
let total_selected () = List.length selected
let where f = List.filter f selected

let implying_mechanical_benefit () =
  where (fun p -> p.Paper.implies_mechanical_benefit)

let proposing_symbolic_deductive_content () =
  where (fun p ->
      List.mem Paper.Content_symbolic_deductive p.Paper.artefacts)

let mentioning_mechanical_verification () =
  where (fun p ->
      List.mem Paper.Content_symbolic_deductive p.Paper.artefacts
      && p.Paper.mentions_mechanical_verification)

let informal_first_then_formalise () =
  where (fun p -> p.Paper.relationship = Paper.Informal_first_then_formalise)

let formalising_graphical_syntax () =
  where (fun p -> List.mem Paper.Syntax p.Paper.artefacts)

let formalising_pattern_structure () =
  where (fun p -> List.mem Paper.Pattern_structure p.Paper.artefacts)

let formalising_pattern_parameters () =
  where (fun p -> List.mem Paper.Pattern_parameters p.Paper.artefacts)

let with_substantial_evidence () =
  where (fun p ->
      match p.Paper.evidence_of_benefit with
      | Paper.No_evidence | Paper.Worked_example | Paper.Thin_case_study ->
          false)

let acknowledging_hypothesis () =
  where (fun p -> p.Paper.acknowledges_hypothesis)

let report () =
  [
    ("papers selected in phase two", total_selected (), 20);
    ( "make or imply a mechanical-validation confidence claim",
      List.length (implying_mechanical_benefit ()),
      6 );
    ( "propose symbolic, deductive formalisation of argument content",
      List.length (proposing_symbolic_deductive_content ()),
      11 );
    ( "of those, explicitly mention mechanical verification",
      List.length (mentioning_mechanical_verification ()),
      4 );
    ( "propose informal-first construction, then formalisation",
      List.length (informal_first_then_formalise ()),
      3 );
    ( "formalise the syntax of graphical argument notations",
      List.length (formalising_graphical_syntax ()),
      4 );
    ( "formalise argument pattern structure",
      List.length (formalising_pattern_structure ()),
      3 );
    ( "also formalise pattern parameters",
      List.length (formalising_pattern_parameters ()),
      2 );
    ( "supply substantial empirical evidence of benefit",
      List.length (with_substantial_evidence ()),
      0 );
    ( "candidly state that benefit is an unvalidated hypothesis",
      List.length (acknowledging_hypothesis ()),
      2 );
  ]
