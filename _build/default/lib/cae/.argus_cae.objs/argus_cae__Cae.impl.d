lib/cae/cae.ml: Argus_core Argus_gsn Format List Node Printf String Structure
