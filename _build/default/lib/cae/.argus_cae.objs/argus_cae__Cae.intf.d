lib/cae/cae.mli: Argus_core Argus_gsn Format
