(** Deliberation dialogues for safety-critical actions
    (Tolchinsky et al., Section III.O of the paper).

    A proposal (e.g. "transplant this organ into this patient") is
    debated by moves that raise safety factors against it and rebut
    those factors.  The record of moves induces an abstract
    argumentation framework — objections attack what they object to,
    rebuttals attack objections — and the current {!decision} is the
    grounded acceptability of the proposal, which changes
    non-monotonically as moves arrive: exactly the on-line
    decision-support use the surveyed paper describes (and, as the
    survey notes, {e not} the way safety cases are normally used). *)

type move_kind =
  | Propose  (** The initial action proposal. *)
  | Objection of Argus_core.Id.t  (** Raises a factor against a move. *)
  | Rebuttal of Argus_core.Id.t  (** Counters an objection (or any move). *)

type move = {
  id : Argus_core.Id.t;
  by : string;  (** The professional making the move. *)
  kind : move_kind;
  statement : string;
}

type t

val start : id:string -> by:string -> string -> t
(** [start ~id ~by statement] opens the dialogue with the proposal. *)

val move :
  id:string -> by:string -> kind:move_kind -> string -> t -> t
(** Appends a move.  Structural legality is reported by {!check}, not
    enforced here, so ill-formed dialogues can be represented and
    diagnosed. *)

val moves : t -> move list
val proposal : t -> move

val check : t -> Argus_core.Diagnostic.t list
(** Codes under ["dialogue/"]: ["dialogue/duplicate-move"],
    ["dialogue/dangling-target"] (target not an earlier move),
    ["dialogue/self-attack"] (a participant attacking their own move),
    ["dialogue/second-proposal"]. *)

val framework : t -> Af.t
(** The induced argumentation framework. *)

type decision = Proceed | Do_not_proceed | Undecided

val decision : t -> decision
(** Grounded status of the proposal: accepted, rejected or undecided. *)

val pp : Format.formatter -> t -> unit
