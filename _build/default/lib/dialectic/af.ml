module Id = Argus_core.Id

type t = {
  args : Id.t list;  (** Insertion order, no duplicates. *)
  attacks : (Id.t * Id.t) list;  (** (attacker, target), no duplicates. *)
}

let empty = { args = []; attacks = [] }

let add_argument a t =
  if List.exists (Id.equal a) t.args then t else { t with args = t.args @ [ a ] }

let add_attack ~attacker ~target t =
  let t = add_argument attacker (add_argument target t) in
  if List.mem (attacker, target) t.attacks then t
  else { t with attacks = t.attacks @ [ (attacker, target) ] }

let of_lists ~arguments ~attacks =
  let t =
    List.fold_left (fun t a -> add_argument (Id.of_string a) t) empty arguments
  in
  List.fold_left
    (fun t (a, b) ->
      add_attack ~attacker:(Id.of_string a) ~target:(Id.of_string b) t)
    t attacks

let arguments t = t.args
let size t = List.length t.args

let attackers a t =
  List.filter_map
    (fun (x, y) -> if Id.equal y a then Some x else None)
    t.attacks

let attacks_of a t =
  List.filter_map
    (fun (x, y) -> if Id.equal x a then Some y else None)
    t.attacks

let set_attacks t s a =
  List.exists (fun m -> List.exists (Id.equal a) (attacks_of m t)) (Id.Set.elements s)

let conflict_free t s =
  not
    (List.exists
       (fun (x, y) -> Id.Set.mem x s && Id.Set.mem y s)
       t.attacks)

let defends t s a =
  List.for_all (fun attacker -> set_attacks t s attacker) (attackers a t)

let admissible t s =
  conflict_free t s && Id.Set.for_all (fun a -> defends t s a) s

let grounded t =
  (* Least fixpoint of F(S) = arguments defended by S. *)
  let rec iterate s =
    let s' =
      List.filter (fun a -> defends t s a) t.args |> Id.Set.of_list
    in
    if Id.Set.equal s s' then s else iterate s'
  in
  iterate Id.Set.empty

let all_subsets args =
  (* Subsets in increasing-size-friendly order (bit enumeration). *)
  let arr = Array.of_list args in
  let n = Array.length arr in
  List.init (1 lsl n) (fun mask ->
      let s = ref Id.Set.empty in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) <> 0 then s := Id.Set.add arr.(i) !s
      done;
      !s)

let preferred t =
  if size t > 16 then
    invalid_arg "Af.preferred: framework too large for subset search";
  let admissibles = List.filter (admissible t) (all_subsets t.args) in
  List.filter
    (fun s ->
      not
        (List.exists
           (fun s' -> (not (Id.Set.equal s s')) && Id.Set.subset s s')
           admissibles))
    admissibles

let stable t =
  if size t > 16 then
    invalid_arg "Af.stable: framework too large for subset search";
  List.filter
    (fun s ->
      conflict_free t s
      && List.for_all
           (fun a -> Id.Set.mem a s || set_attacks t s a)
           t.args)
    (all_subsets t.args)

type status = Accepted | Rejected | Undecided

let status t a =
  let g = grounded t in
  if Id.Set.mem a g then Accepted
  else if set_attacks t g a then Rejected
  else Undecided

let pp ppf t =
  Format.fprintf ppf "arguments: %s@."
    (String.concat ", " (List.map Id.to_string t.args));
  List.iter
    (fun (x, y) ->
      Format.fprintf ppf "  %a attacks %a@." Id.pp x Id.pp y)
    t.attacks
