module Id = Argus_core.Id
module Diagnostic = Argus_core.Diagnostic

type move_kind = Propose | Objection of Id.t | Rebuttal of Id.t

type move = { id : Id.t; by : string; kind : move_kind; statement : string }

type t = { all : move list (** In move order; head is the proposal. *) }

let start ~id ~by statement =
  { all = [ { id = Id.of_string id; by; kind = Propose; statement } ] }

let move ~id ~by ~kind statement t =
  { all = t.all @ [ { id = Id.of_string id; by; kind; statement } ] }

let moves t = t.all
let proposal t = List.hd t.all

let check t =
  let out = ref [] in
  let add d = out := d :: !out in
  let seen = Hashtbl.create 16 in
  List.iteri
    (fun k m ->
      if Hashtbl.mem seen m.id then
        add
          (Diagnostic.errorf ~code:"dialogue/duplicate-move"
             ~subjects:[ m.id ] "move id reused");
      (match m.kind with
      | Propose ->
          if k > 0 then
            add
              (Diagnostic.errorf ~code:"dialogue/second-proposal"
                 ~subjects:[ m.id ]
                 "a deliberation dialogue has a single proposal")
      | Objection target | Rebuttal target -> (
          match Hashtbl.find_opt seen target with
          | None ->
              add
                (Diagnostic.errorf ~code:"dialogue/dangling-target"
                   ~subjects:[ m.id; target ]
                   "move targets a move that has not been made")
          | Some earlier_by ->
              if earlier_by = m.by then
                add
                  (Diagnostic.warningf ~code:"dialogue/self-attack"
                     ~subjects:[ m.id; target ]
                     "%s attacks their own earlier move" m.by)));
      Hashtbl.replace seen m.id m.by)
    t.all;
  Diagnostic.sort (List.rev !out)

let framework t =
  List.fold_left
    (fun af m ->
      match m.kind with
      | Propose -> Af.add_argument m.id af
      | Objection target | Rebuttal target ->
          Af.add_attack ~attacker:m.id ~target af)
    Af.empty t.all

let pp ppf t =
  List.iter
    (fun m ->
      let kind =
        match m.kind with
        | Propose -> "proposes"
        | Objection target ->
            Printf.sprintf "objects to %s:" (Id.to_string target)
        | Rebuttal target ->
            Printf.sprintf "rebuts %s:" (Id.to_string target)
      in
      Format.fprintf ppf "%a  %s %s %S@." Id.pp m.id m.by kind m.statement)
    t.all

type decision = Proceed | Do_not_proceed | Undecided

let decision t =
  let af = framework t in
  match Af.status af (proposal t).id with
  | Af.Accepted -> Proceed
  | Af.Rejected -> Do_not_proceed
  | Af.Undecided -> Undecided
