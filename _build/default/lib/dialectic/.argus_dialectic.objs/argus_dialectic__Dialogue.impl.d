lib/dialectic/dialogue.ml: Af Argus_core Format Hashtbl List Printf
