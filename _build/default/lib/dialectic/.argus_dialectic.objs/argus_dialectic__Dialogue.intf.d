lib/dialectic/dialogue.mli: Af Argus_core Format
