lib/dialectic/af.ml: Argus_core Array Format List String
