lib/dialectic/af.mli: Argus_core Format
