lib/fallacy/formal.ml: Argus_logic List
