lib/fallacy/informal.ml: Argus_core Argus_gsn Argus_logic Argus_prolog Hashtbl List Option String
