lib/fallacy/greenwell.ml: Argus_logic Formal List
