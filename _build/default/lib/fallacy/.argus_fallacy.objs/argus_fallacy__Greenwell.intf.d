lib/fallacy/greenwell.mli: Formal
