lib/fallacy/informal.mli: Argus_core Argus_gsn Argus_prolog
