lib/fallacy/formal.mli: Argus_logic
