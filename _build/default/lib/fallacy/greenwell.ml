module Prop = Argus_logic.Prop

type kind =
  | Drawing_wrong_conclusion
  | Fallacious_use_of_language
  | Fallacy_of_composition
  | Hasty_inductive_generalisation
  | Omission_of_key_evidence
  | Red_herring
  | Using_wrong_reasons

let all_kinds =
  [
    Drawing_wrong_conclusion;
    Fallacious_use_of_language;
    Fallacy_of_composition;
    Hasty_inductive_generalisation;
    Omission_of_key_evidence;
    Red_herring;
    Using_wrong_reasons;
  ]

let kind_to_string = function
  | Drawing_wrong_conclusion -> "drawing the wrong conclusion"
  | Fallacious_use_of_language -> "fallacious use of language"
  | Fallacy_of_composition -> "fallacy of composition"
  | Hasty_inductive_generalisation -> "hasty inductive generalisation"
  | Omission_of_key_evidence -> "omission of key evidence"
  | Red_herring -> "red herring"
  | Using_wrong_reasons -> "using the wrong reasons"

let reported_counts =
  [
    (Drawing_wrong_conclusion, 3);
    (Fallacious_use_of_language, 10);
    (Fallacy_of_composition, 2);
    (Hasty_inductive_generalisation, 4);
    (Omission_of_key_evidence, 5);
    (Red_herring, 5);
    (Using_wrong_reasons, 16);
  ]

let is_strictly_formal (_ : kind) = false

let machine_help = function
  | Drawing_wrong_conclusion ->
      "A proof checker prevents drawing the wrong conclusion from symbolic \
       premises, but one can still assert a rule that draws it from \
       premises that do not support it; human review of asserted premises \
       is needed."
  | Fallacious_use_of_language ->
      "Symbols are unambiguous, but the natural language binding them to \
       real-world meaning can still be ambiguous; equivocation survives \
       formalisation."
  | Fallacy_of_composition ->
      "The fallacy exists only where parts can interact; a theorem prover \
       cannot know how real-world elements interact."
  | Hasty_inductive_generalisation ->
      "Formalisation drives the generalisation into the informal part, or \
       the arguer simply asserts it as a deductive rule; a proof checker \
       cannot know whether a formal set is complete with respect to the \
       world."
  | Omission_of_key_evidence ->
      "Detecting omission requires knowing what evidence is key; \
       formalisation can force assertions but cannot validate them."
  | Red_herring ->
      "Proof checkers are not distracted by formally irrelevant premises, \
       but an asserted rule can launder an irrelevant premise into the \
       conclusion, and misleading symbol names still mislead humans."
  | Using_wrong_reasons ->
      "Premises inappropriate to the claim can be encoded as false \
       premises or asserted rules; machine checking alone cannot \
       eliminate them."

type instance = {
  kind : kind;
  system : string;
  description : string;
  argument : Formal.propositional;
}

let v = Prop.var

(* Build a deductively valid argument whose soundness hinges on the
   asserted bridge rule [from -> to]: the shape into which each informal
   fallacy is pressed when formalised. *)
let bridge ?(extra = []) from_atom to_atom =
  {
    Formal.premises = extra @ [ v from_atom; Prop.Implies (v from_atom, v to_atom) ];
    conclusion = v to_atom;
  }

let mk kind system description argument = { kind; system; description; argument }

let corpus =
  (* 3 x drawing the wrong conclusion. *)
  [
    mk Drawing_wrong_conclusion "altimeter"
      "concludes the altimeter is airworthy from evidence that only shows \
       its firmware compiles without warnings"
      (bridge "altimeter_fw_compiles_clean" "altimeter_airworthy");
    mk Drawing_wrong_conclusion "thrust reverser"
      "concludes in-flight deployment is impossible from evidence that \
       deployment was not observed during taxi tests"
      (bridge "no_deploy_in_taxi_tests" "no_inflight_deploy_possible");
    mk Drawing_wrong_conclusion "insulin pump"
      "concludes dosing is always correct because the dosing requirement \
       document was approved"
      (bridge "dosing_reqs_approved" "dosing_always_correct");
  ]
  (* 10 x fallacious use of language (ambiguity/equivocation). *)
  @ List.map
      (fun (system, word, description) ->
        mk Fallacious_use_of_language system description
          (bridge
             (word ^ "_property_established")
             (word ^ "_conclusion_follows")))
      [
        ("desert bank", "bank",
         "'bank' names both a financial institution and a riverside; the \
          premises are about different banks");
        ("rail interlock", "secure",
         "'secure' shifts between 'locked' and 'resistant to attack' \
          between premise and conclusion");
        ("UAV", "operator",
         "'operator' means the pilot in one premise and the airline in \
          another");
        ("reactor trip", "fast",
         "'fast' means 'within 10 ms' in the evidence but 'before damage \
          occurs' in the claim");
        ("brake-by-wire", "failure",
         "'failure' covers both component faults and system-level hazards, \
          conflating their rates");
        ("medical monitor", "alarm",
         "'alarm' denotes the audible signal in tests but the full \
          escalation chain in the claim");
        ("flight control", "verified",
         "'verified' means 'reviewed' in the premise and 'proved' in the \
          conclusion");
        ("train door", "closed",
         "'closed' means 'commanded closed' in the log evidence but \
          'physically latched' in the hazard analysis");
        ("battery pack", "isolated",
         "'isolated' shifts between electrical isolation and physical \
          containment");
        ("autopilot", "envelope",
         "'envelope' means the tested flight regime in evidence but the \
          certified regime in the claim");
      ]
  (* 2 x fallacy of composition. *)
  @ [
      mk Fallacy_of_composition "avionics suite"
        "each LRU meets its own availability target, therefore the \
         integrated suite does — ignoring shared-bus interactions"
        (bridge "each_lru_meets_availability" "suite_meets_availability");
      mk Fallacy_of_composition "software stack"
        "every task is schedulable in isolation, therefore the task set is \
         schedulable — ignoring interference"
        (bridge "each_task_schedulable_alone" "taskset_schedulable");
    ]
  (* 4 x hasty inductive generalisation. *)
  @ [
      mk Hasty_inductive_generalisation "autonomous shuttle"
        "10,000 km of trials in fair weather generalised to all operating \
         conditions"
        (bridge "trials_fair_weather_ok" "all_conditions_ok");
      mk Hasty_inductive_generalisation "pacemaker"
        "bench results on three units generalised to the production \
         population"
        (bridge "three_units_pass_bench" "population_conforms");
      mk Hasty_inductive_generalisation "rail signalling"
        "no wrong-side failure in one year of service generalised to the \
         30-year life"
        (bridge "one_year_no_wsf" "life_no_wsf");
      mk Hasty_inductive_generalisation "engine controller"
        "nominal-load test coverage generalised to all load profiles"
        (bridge "nominal_load_tests_pass" "all_loads_pass");
    ]
  (* 5 x omission of key evidence. *)
  @ [
      mk Omission_of_key_evidence "chemical plant"
        "argues all identified hazards are managed without evidence that \
         hazard identification was adequate"
        (bridge "identified_hazards_managed" "all_hazards_managed");
      mk Omission_of_key_evidence "flight management system"
        "cites unit tests but omits the integration test campaign that \
         was never run"
        (bridge "unit_tests_pass" "verification_complete");
      mk Omission_of_key_evidence "infusion pump"
        "omits the usability study on which the mitigation of use errors \
         depends"
        (bridge "device_alarms_work" "use_errors_mitigated");
      mk Omission_of_key_evidence "level crossing"
        "claims sensor coverage without the site survey evidencing it"
        (bridge "sensors_installed" "coverage_adequate");
      mk Omission_of_key_evidence "satellite bus"
        "relies on radiation tolerance data for a different die revision"
        (bridge "old_die_rad_data_ok" "new_die_rad_tolerant");
    ]
  (* 5 x red herring. *)
  @ [
      mk Red_herring "automotive ECU"
        "the development process is ISO 26262 certified, which is offered \
         in support of a claim about a specific timing hazard"
        (bridge "process_iso26262_certified" "timing_hazard_mitigated");
      mk Red_herring "surgical robot"
        "the vendor's long market history is offered in support of a \
         sterilisation claim"
        (bridge "vendor_established_1985" "sterilisation_effective");
      mk Red_herring "metro doors"
        "passenger satisfaction surveys are offered in support of the \
         obstacle-detection claim"
        (bridge "passenger_satisfaction_high" "obstacle_detection_reliable");
      mk Red_herring "data recorder"
        "crash-survivability of the casing is offered in support of data \
         integrity in normal operation"
        (bridge "casing_survives_crash" "records_never_corrupted");
      mk Red_herring "ground station"
        "staff training records are offered in support of a claim about \
         software fault tolerance"
        (bridge "staff_trained" "software_fault_tolerant");
    ]
  (* 16 x using the wrong reasons. *)
  @ List.map
      (fun (system, from_atom, to_atom, description) ->
        mk Using_wrong_reasons system description (bridge from_atom to_atom))
      [
        ("task scheduler", "unit_test_results_ok", "wcet_task_1_le_250",
         "asserts wcet(task_1) <= 250 on the basis of unit test results \
          (the paper's own example)");
        ("task scheduler", "code_reviewed_and_tests_pass", "meets_deadlines",
         "asserts deadline satisfaction from code review and unit tests \
          (the paper's other example)");
        ("display unit", "mtbf_brochure_value", "display_failure_rate_met",
         "cites a brochure MTBF as if it were measured reliability");
        ("sensor fusion", "simulation_matches_spec", "sensor_noise_bounded",
         "uses simulation agreement to bound physical sensor noise");
        ("actuator", "supplier_self_declaration", "actuator_fail_safe",
         "uses a supplier self-declaration as failure-mode evidence");
        ("network switch", "ping_latency_ok", "worst_case_latency_ok",
         "uses average ping data for a worst-case latency claim");
        ("power supply", "nominal_temp_tests_pass", "thermal_margins_ok",
         "uses nominal-temperature tests for claims over the full range");
        ("flight software", "static_analysis_clean", "runtime_errors_absent",
         "treats a clean static-analysis run as proof of absence of all \
          runtime errors");
        ("hydraulics", "maintenance_on_schedule", "leak_rate_acceptable",
         "uses maintenance schedule compliance as leak-rate evidence");
        ("radar altimeter", "design_review_passed", "interference_immune",
         "uses a design review outcome as interference immunity evidence");
        ("door controller", "fmea_completed", "all_failures_detected",
         "treats FMEA completion as evidence that detection coverage is \
          total");
        ("cooling loop", "pump_spec_says_redundant", "cooling_never_lost",
         "derives 'never lost' from a specification statement, not from \
          analysis");
        ("telemetry link", "crc_in_protocol", "telemetry_always_delivered",
         "derives guaranteed delivery from the mere presence of a CRC");
        ("braking system", "component_certificates_present",
         "braking_distance_met",
         "derives a system-level braking distance from component \
          certificates");
        ("operating system", "vendor_cert_kit_passed", "partitioning_sound",
         "uses a vendor certification kit pass for a partitioning claim \
          beyond its scope");
        ("watchdog", "watchdog_present", "hangs_always_recovered",
         "derives guaranteed hang recovery from the presence of a \
          watchdog");
      ]

let corpus_counts =
  List.map
    (fun k ->
      (k, List.length (List.filter (fun i -> i.kind = k) corpus)))
    all_kinds
