(** The Greenwell et al. safety-argument fallacy data.

    Greenwell, Knight, Holloway and Pease reviewed three real safety
    arguments and found 45 fallacy instances in seven kinds (the paper's
    Section V.B): 3 instances of drawing the wrong conclusion, 10 of
    fallacious use of language, 2 of fallacy of composition, 4 of hasty
    inductive generalisation, 5 of omission of key evidence, 5 of red
    herring, and 16 of using the wrong reasons.

    The paper's argument is that {e none of these is strictly formal}:
    each can be rendered as a deductively valid propositional argument
    whose flaw lives in a false or unsupported premise, so mechanical
    proof checking cannot catch it.  This module makes that claim
    executable: {!corpus} contains one formalised argument per reported
    instance, built so that a human reviewer would recognise the flaw
    from the description, while {!Formal.check_propositional} finds
    nothing wrong — which is exactly what the bench harness verifies. *)

type kind =
  | Drawing_wrong_conclusion
  | Fallacious_use_of_language
  | Fallacy_of_composition
  | Hasty_inductive_generalisation
  | Omission_of_key_evidence
  | Red_herring
  | Using_wrong_reasons

val all_kinds : kind list
val kind_to_string : kind -> string

val reported_counts : (kind * int) list
(** The counts Greenwell et al. report, as cited by the paper. *)

val is_strictly_formal : kind -> bool
(** [false] for every kind — the paper's central observation. *)

val machine_help : kind -> string
(** The paper's Section V.B analysis of what, if anything, formal
    machinery contributes against this kind. *)

type instance = {
  kind : kind;
  system : string;  (** The (synthetic) system the argument concerns. *)
  description : string;  (** What a human reviewer would object to. *)
  argument : Formal.propositional;
      (** The formalised rendering: deductively valid, flaw in a
          premise. *)
}

val corpus : instance list
(** 45 instances; per-kind counts match {!reported_counts}. *)

val corpus_counts : (kind * int) list
(** Computed from {!corpus}; equals {!reported_counts}. *)
