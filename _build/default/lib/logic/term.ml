type t = Var of string | App of string * t list

let var v = Var v
let const c = App (c, [])
let app f args = App (f, args)
let equal = Stdlib.( = )
let compare = Stdlib.compare

let vars t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec go = function
    | Var v ->
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          out := v :: !out
        end
    | App (_, args) -> List.iter go args
  in
  go t;
  List.rev !out

let rec is_ground = function
  | Var _ -> false
  | App (_, args) -> List.for_all is_ground args

let rec size = function
  | Var _ -> 1
  | App (_, args) -> List.fold_left (fun acc a -> acc + size a) 1 args

module Smap = Map.Make (String)

let rec apply_map m = function
  | Var v as t -> ( match Smap.find_opt v m with Some u -> u | None -> t)
  | App (f, args) -> App (f, List.map (apply_map m) args)

module Subst = struct
  type nonrec t = t Smap.t

  let empty = Smap.empty
  let is_empty = Smap.is_empty
  let bindings s = Smap.bindings s
  let find v s = Smap.find_opt v s
  let apply s t = apply_map s t

  let bind v t s =
    let single = Smap.singleton v t in
    let s = Smap.map (fun u -> apply_map single u) s in
    Smap.add v t s

  let compose s2 s1 =
    let s1' = Smap.map (fun t -> apply_map s2 t) s1 in
    Smap.union (fun _ t1 _ -> Some t1) s1' s2
end

let rec occurs v = function
  | Var u -> u = v
  | App (_, args) -> List.exists (occurs v) args

let unify_under s t1 t2 =
  let rec go s t1 t2 =
    match s with
    | None -> None
    | Some sub -> (
        let t1 = Subst.apply sub t1 and t2 = Subst.apply sub t2 in
        match (t1, t2) with
        | Var v, Var u when v = u -> s
        | Var v, t | t, Var v ->
            if occurs v t then None else Some (Subst.bind v t sub)
        | App (f, args1), App (g, args2) ->
            if f <> g || List.length args1 <> List.length args2 then None
            else List.fold_left2 go s args1 args2)
  in
  go (Some s) t1 t2

let unify t1 t2 = unify_under Subst.empty t1 t2

let rec rename ~suffix = function
  | Var v -> Var (v ^ "_" ^ suffix)
  | App (f, args) -> App (f, List.map (rename ~suffix) args)

let rec pp ppf = function
  | Var v -> Format.pp_print_string ppf v
  | App (f, []) -> Format.pp_print_string ppf f
  | App (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp)
        args

let to_string t = Format.asprintf "%a" pp t

(* --- Parser --- *)

exception Parse_error of string

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

type token = Ident of string | Lparen | Rparen | Comma

let tokenise s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) (Lparen :: acc)
      | ')' -> go (i + 1) (Rparen :: acc)
      | ',' -> go (i + 1) (Comma :: acc)
      | c when is_ident_char c ->
          let j = ref i in
          while !j < n && is_ident_char s.[!j] do
            incr j
          done;
          go !j (Ident (String.sub s i (!j - i)) :: acc)
      | c -> raise (Parse_error (Printf.sprintf "unexpected character %C" c))
  in
  go 0 []

let is_variable_name name =
  String.length name > 0
  && ((name.[0] >= 'A' && name.[0] <= 'Z') || name.[0] = '_')

let parse_tokens toks =
  let toks = ref toks in
  let advance () =
    match !toks with
    | [] -> raise (Parse_error "unexpected end of input")
    | t :: rest ->
        toks := rest;
        t
  in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let rec p_term () =
    match advance () with
    | Ident name -> (
        if is_variable_name name then Var name
        else
          match peek () with
          | Some Lparen ->
              ignore (advance ());
              let args = p_args [] in
              App (name, args)
          | _ -> App (name, []))
    | _ -> raise (Parse_error "expected a term")
  and p_args acc =
    let t = p_term () in
    match advance () with
    | Comma -> p_args (t :: acc)
    | Rparen -> List.rev (t :: acc)
    | _ -> raise (Parse_error "expected ',' or ')'")
  in
  let t = p_term () in
  (match !toks with
  | [] -> ()
  | _ -> raise (Parse_error "trailing input after term"));
  t

let of_string s =
  match parse_tokens (tokenise s) with
  | t -> Ok t
  | exception Parse_error msg -> Error msg
