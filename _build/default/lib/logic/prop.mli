(** Propositional formulas.

    This is the symbolic language in which "outer" arguments (Haley et
    al.), Rushby-style formalised premises and the formal annotations of
    DSL nodes are written.  Variables are free-form strings such as
    ["on_grnd"] or ["wcet_task_1_le_250"]. *)

type t =
  | Top
  | Bot
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t

val var : string -> t
val ( && ) : t -> t -> t
val ( || ) : t -> t -> t
val ( ==> ) : t -> t -> t
val ( <=> ) : t -> t -> t
val neg : t -> t
val conj : t list -> t
(** [conj []] is {!Top}. *)

val disj : t list -> t
(** [disj []] is {!Bot}. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val vars : t -> string list
(** Free variables in first-occurrence order, without duplicates. *)

val size : t -> int
(** Connective-and-atom count; a proxy for formula complexity. *)

val subst : (string -> t option) -> t -> t
(** Capture is impossible (no binders); replaces each [Var v] for which
    the function returns [Some f]. *)

val eval : (string -> bool) -> t -> bool
(** Evaluate under a total valuation. *)

val nnf : t -> t
(** Negation normal form.  Eliminates [Implies]/[Iff] and pushes [Not]
    to atoms.  Semantics-preserving. *)

val pp : Format.formatter -> t -> unit
(** Minimal-parenthesis ASCII rendering: [~], [&], [|], [->], [<->].
    [->] is right-associative; [&] binds tighter than [|] which binds
    tighter than [->]. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parser for the {!pp} syntax plus common synonyms: [!]/[~]/[not],
    [&]/[/\]/[and], [|]/[\/]/[or], [->]/[=>], [<->]/[<=>], [true],
    [false].  Returns a description of the first syntax error. *)

val of_string_exn : string -> t
(** @raise Failure on a syntax error. *)
