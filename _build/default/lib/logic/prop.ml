type t =
  | Top
  | Bot
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t

let var v = Var v
let neg a = Not a

let conj = function
  | [] -> Top
  | f :: fs -> List.fold_left (fun acc g -> And (acc, g)) f fs

let disj = function
  | [] -> Bot
  | f :: fs -> List.fold_left (fun acc g -> Or (acc, g)) f fs

let equal = Stdlib.( = )
let compare = Stdlib.compare

let vars f =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec go = function
    | Top | Bot -> ()
    | Var v ->
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          out := v :: !out
        end
    | Not a -> go a
    | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) ->
        go a;
        go b
  in
  go f;
  List.rev !out

let rec size = function
  | Top | Bot | Var _ -> 1
  | Not a -> 1 + size a
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) -> 1 + size a + size b

let rec subst lookup = function
  | (Top | Bot) as f -> f
  | Var v as f -> ( match lookup v with Some g -> g | None -> f)
  | Not a -> Not (subst lookup a)
  | And (a, b) -> And (subst lookup a, subst lookup b)
  | Or (a, b) -> Or (subst lookup a, subst lookup b)
  | Implies (a, b) -> Implies (subst lookup a, subst lookup b)
  | Iff (a, b) -> Iff (subst lookup a, subst lookup b)

let rec eval v = function
  | Top -> true
  | Bot -> false
  | Var x -> v x
  | Not a -> not (eval v a)
  | And (a, b) -> eval v a && eval v b
  | Or (a, b) -> eval v a || eval v b
  | Implies (a, b) -> (not (eval v a)) || eval v b
  | Iff (a, b) -> Bool.equal (eval v a) (eval v b)

let rec nnf = function
  | (Top | Bot | Var _) as f -> f
  | And (a, b) -> And (nnf a, nnf b)
  | Or (a, b) -> Or (nnf a, nnf b)
  | Implies (a, b) -> Or (nnf (Not a), nnf b)
  | Iff (a, b) -> And (Or (nnf (Not a), nnf b), Or (nnf (Not b), nnf a))
  | Not f -> (
      match f with
      | Top -> Bot
      | Bot -> Top
      | Var _ -> Not f
      | Not a -> nnf a
      | And (a, b) -> Or (nnf (Not a), nnf (Not b))
      | Or (a, b) -> And (nnf (Not a), nnf (Not b))
      | Implies (a, b) -> And (nnf a, nnf (Not b))
      | Iff (a, b) -> Or (And (nnf a, nnf (Not b)), And (nnf (Not a), nnf b)))

(* Precedence: Iff 1, Implies 2, Or 3, And 4, Not 5, atoms 6.  A
   subformula is parenthesised when its precedence is below the context's
   requirement. *)
let rec pp_prec prec ppf f =
  let paren p body =
    if p < prec then Format.fprintf ppf "(%t)" body else body ppf
  in
  match f with
  | Top -> Format.pp_print_string ppf "true"
  | Bot -> Format.pp_print_string ppf "false"
  | Var v -> Format.pp_print_string ppf v
  | Not a -> paren 5 (fun ppf -> Format.fprintf ppf "~%a" (pp_prec 5) a)
  | And (a, b) ->
      paren 4 (fun ppf ->
          Format.fprintf ppf "%a & %a" (pp_prec 4) a (pp_prec 5) b)
  | Or (a, b) ->
      paren 3 (fun ppf ->
          Format.fprintf ppf "%a | %a" (pp_prec 3) a (pp_prec 4) b)
  | Implies (a, b) ->
      paren 2 (fun ppf ->
          Format.fprintf ppf "%a -> %a" (pp_prec 3) a (pp_prec 2) b)
  | Iff (a, b) ->
      paren 1 (fun ppf ->
          Format.fprintf ppf "%a <-> %a" (pp_prec 1) a (pp_prec 2) b)

let pp ppf f = pp_prec 0 ppf f
let to_string f = Format.asprintf "%a" pp f

(* --- Parser (recursive descent over a token list) --- *)

type token =
  | TVar of string
  | TTrue
  | TFalse
  | TNot
  | TAnd
  | TOr
  | TImplies
  | TIff
  | TLparen
  | TRparen

let token_to_string = function
  | TVar v -> v
  | TTrue -> "true"
  | TFalse -> "false"
  | TNot -> "~"
  | TAnd -> "&"
  | TOr -> "|"
  | TImplies -> "->"
  | TIff -> "<->"
  | TLparen -> "("
  | TRparen -> ")"

exception Parse_error of string

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let tokenise s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) (TLparen :: acc)
      | ')' -> go (i + 1) (TRparen :: acc)
      | '~' | '!' -> go (i + 1) (TNot :: acc)
      | '&' -> go (i + 1) (TAnd :: acc)
      | '|' -> go (i + 1) (TOr :: acc)
      | '/' when i + 1 < n && s.[i + 1] = '\\' -> go (i + 2) (TAnd :: acc)
      | '\\' when i + 1 < n && s.[i + 1] = '/' -> go (i + 2) (TOr :: acc)
      | '-' when i + 1 < n && s.[i + 1] = '>' -> go (i + 2) (TImplies :: acc)
      | '=' when i + 1 < n && s.[i + 1] = '>' -> go (i + 2) (TImplies :: acc)
      | '<' when i + 2 < n && s.[i + 1] = '-' && s.[i + 2] = '>' ->
          go (i + 3) (TIff :: acc)
      | '<' when i + 2 < n && s.[i + 1] = '=' && s.[i + 2] = '>' ->
          go (i + 3) (TIff :: acc)
      | c when is_ident_char c ->
          let j = ref i in
          while !j < n && is_ident_char s.[!j] do
            incr j
          done;
          let word = String.sub s i (!j - i) in
          let tok =
            match String.lowercase_ascii word with
            | "true" -> TTrue
            | "false" -> TFalse
            | "not" -> TNot
            | "and" -> TAnd
            | "or" -> TOr
            | _ -> TVar word
          in
          go !j (tok :: acc)
      | c -> raise (Parse_error (Printf.sprintf "unexpected character %C" c))
  in
  go 0 []

(* Grammar (lowest to highest precedence):
     iff  ::= imp  ('<->' imp)*         left-assoc
     imp  ::= or   ('->'  imp)?         right-assoc
     or   ::= and  ('|'   and)*
     and  ::= not  ('&'   not)*
     not  ::= '~' not | atom
     atom ::= var | 'true' | 'false' | '(' iff ')'. *)
let parse tokens =
  let toks = ref tokens in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let advance () =
    match !toks with
    | [] -> raise (Parse_error "unexpected end of input")
    | t :: rest ->
        toks := rest;
        t
  in
  let expect t =
    let got = advance () in
    if got <> t then
      raise
        (Parse_error
           (Printf.sprintf "expected %s but found %s" (token_to_string t)
              (token_to_string got)))
  in
  let rec p_iff () =
    let lhs = p_imp () in
    let rec loop acc =
      match peek () with
      | Some TIff ->
          ignore (advance ());
          loop (Iff (acc, p_imp ()))
      | _ -> acc
    in
    loop lhs
  and p_imp () =
    let lhs = p_or () in
    match peek () with
    | Some TImplies ->
        ignore (advance ());
        Implies (lhs, p_imp ())
    | _ -> lhs
  and p_or () =
    let lhs = p_and () in
    let rec loop acc =
      match peek () with
      | Some TOr ->
          ignore (advance ());
          loop (Or (acc, p_and ()))
      | _ -> acc
    in
    loop lhs
  and p_and () =
    let lhs = p_not () in
    let rec loop acc =
      match peek () with
      | Some TAnd ->
          ignore (advance ());
          loop (And (acc, p_not ()))
      | _ -> acc
    in
    loop lhs
  and p_not () =
    match peek () with
    | Some TNot ->
        ignore (advance ());
        Not (p_not ())
    | _ -> p_atom ()
  and p_atom () =
    match advance () with
    | TVar v -> Var v
    | TTrue -> Top
    | TFalse -> Bot
    | TLparen ->
        let f = p_iff () in
        expect TRparen;
        f
    | t ->
        raise
          (Parse_error
             (Printf.sprintf "unexpected token %s" (token_to_string t)))
  in
  let f = p_iff () in
  (match !toks with
  | [] -> ()
  | t :: _ ->
      raise
        (Parse_error
           (Printf.sprintf "trailing input starting at %s" (token_to_string t))));
  f

let of_string s =
  match parse (tokenise s) with
  | f -> Ok f
  | exception Parse_error msg -> Error msg

let of_string_exn s =
  match of_string s with Ok f -> f | Error msg -> failwith msg

(* Exported constructors-as-operators; defined last so the rest of the
   module keeps the Stdlib boolean operators. *)
let ( && ) a b = And (a, b)
let ( || ) a b = Or (a, b)
let ( ==> ) a b = Implies (a, b)
let ( <=> ) a b = Iff (a, b)
