(** Fitch-style linear natural-deduction proofs and their checker.

    This is the proof system in which Haley et al. write the formal
    "outer" arguments of security requirements satisfaction arguments
    (their 2008 example is an eleven-step proof using Premise, Detach
    (implication elimination), Split (conjunction elimination) and
    Conclusion (implication introduction, discharging a premise)).  The
    same representation feeds the Basir/Denney proof-to-argument
    generator.

    A proof is a numbered list of steps.  Each step cites earlier steps
    by their 1-based index.  The checker verifies every citation and rule
    application and computes, per step, the set of undischarged
    assumptions it depends on, giving the proved sequent. *)

type rule =
  | Premise  (** An axiom of the argument; remains in the sequent. *)
  | Assumption  (** A hypothesis intended to be discharged later. *)
  | And_intro of int * int
  | And_elim_left of int  (** From [A & B], conclude [A] ("Split"). *)
  | And_elim_right of int
  | Or_intro_left of int  (** From [A], conclude [A | B] for stated [B]. *)
  | Or_intro_right of int
  | Or_elim of int * int * int
      (** From [A | B], [A -> C], [B -> C], conclude [C]. *)
  | Imp_elim of int * int  (** Modus ponens ("Detach"). *)
  | Imp_intro of int * int
      (** [Imp_intro (i, j)]: discharge premise/assumption step [i] (with
          formula [A]) using step [j] (with formula [B]); conclude
          [A -> B] ("Conclusion"). *)
  | Iff_intro of int * int  (** From [A -> B] and [B -> A]. *)
  | Iff_elim_left of int  (** From [A <-> B], conclude [A -> B]. *)
  | Iff_elim_right of int
  | Not_elim of int * int  (** From [A] and [~A], conclude [false]. *)
  | Not_intro of int * int
      (** Discharge assumption step [i] (formula [A]) using a
          [false] at step [j]; conclude [~A]. *)
  | Bot_elim of int  (** Ex falso: from [false], conclude anything. *)
  | Reiterate of int
  | Excluded_middle  (** Conclude [A | ~A] for any stated [A]. *)

type step = { formula : Prop.t; rule : rule }

type t = step list
(** Steps are numbered from 1 in citation order. *)

module Intset : Set.S with type elt = int

type checked = {
  proof : t;
  dependencies : Intset.t array;
      (** [dependencies.(k)] is the set of undischarged premise /
          assumption step indices the [(k+1)]-th step rests on. *)
  premises : Prop.t list;
      (** Formulas of the undischarged steps the conclusion depends on,
          in step order. *)
  conclusion : Prop.t;  (** Formula of the final step. *)
}

val check : t -> (checked, Argus_core.Diagnostic.t list) result
(** Verifies every step.  Diagnostics carry codes under ["natded/"], e.g.
    ["natded/bad-citation"], ["natded/rule-mismatch"],
    ["natded/empty-proof"]. *)

val is_valid : t -> bool

val semantically_sound : checked -> bool
(** SAT cross-check that the premises entail the conclusion.  A proof
    accepted by {!check} always satisfies this; exposed for property
    tests and for the paper's point that syntactic checking tracks
    semantic entailment. *)

val theorem : checked -> Prop.t
(** The proved formula [premise_1 & ... & premise_n -> conclusion] (just
    the conclusion when no premises remain). *)

val rule_name : rule -> string
(** Short conventional name, e.g. ["Detach"] for [Imp_elim], ["Split"]
    for conjunction elimination, ["Conclusion"] for [Imp_intro] —
    matching the vocabulary of the Haley et al. example. *)

val citations : rule -> int list

val pp : Format.formatter -> t -> unit
(** Tabular rendering in the style of the paper's Section III.K example:
    step number, formula, rule name with citations. *)
