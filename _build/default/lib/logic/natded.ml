module Diagnostic = Argus_core.Diagnostic

type rule =
  | Premise
  | Assumption
  | And_intro of int * int
  | And_elim_left of int
  | And_elim_right of int
  | Or_intro_left of int
  | Or_intro_right of int
  | Or_elim of int * int * int
  | Imp_elim of int * int
  | Imp_intro of int * int
  | Iff_intro of int * int
  | Iff_elim_left of int
  | Iff_elim_right of int
  | Not_elim of int * int
  | Not_intro of int * int
  | Bot_elim of int
  | Reiterate of int
  | Excluded_middle

type step = { formula : Prop.t; rule : rule }
type t = step list

module Intset = Set.Make (Int)

type checked = {
  proof : t;
  dependencies : Intset.t array;
  premises : Prop.t list;
  conclusion : Prop.t;
}

let rule_name = function
  | Premise -> "Premise"
  | Assumption -> "Assumption"
  | And_intro _ -> "Join"
  | And_elim_left _ | And_elim_right _ -> "Split"
  | Or_intro_left _ | Or_intro_right _ -> "Widen"
  | Or_elim _ -> "Cases"
  | Imp_elim _ -> "Detach"
  | Imp_intro _ -> "Conclusion"
  | Iff_intro _ -> "IffIntro"
  | Iff_elim_left _ | Iff_elim_right _ -> "IffElim"
  | Not_elim _ -> "Contradiction"
  | Not_intro _ -> "Reductio"
  | Bot_elim _ -> "ExFalso"
  | Reiterate _ -> "Reiterate"
  | Excluded_middle -> "ExcludedMiddle"

let citations = function
  | Premise | Assumption | Excluded_middle -> []
  | And_elim_left i
  | And_elim_right i
  | Or_intro_left i
  | Or_intro_right i
  | Iff_elim_left i
  | Iff_elim_right i
  | Bot_elim i
  | Reiterate i ->
      [ i ]
  | And_intro (i, j)
  | Imp_elim (i, j)
  | Imp_intro (i, j)
  | Iff_intro (i, j)
  | Not_elim (i, j)
  | Not_intro (i, j) ->
      [ i; j ]
  | Or_elim (i, j, k) -> [ i; j; k ]

type check_state = {
  formulas : Prop.t array;
  deps : Intset.t array;
  rules : rule array;
}

let err ~code fmt = Format.kasprintf (fun m -> Diagnostic.error ~code m) fmt

(* Check step [k] (0-based) given that steps [0..k-1] checked out.
   Returns the dependency set or a diagnostic. *)
let check_step st k =
  let n = k in
  let step_no = k + 1 in
  let cite i =
    if i < 1 || i > n then
      Error
        (err ~code:"natded/bad-citation"
           "step %d cites step %d, which is not an earlier step" step_no i)
    else Ok (st.formulas.(i - 1), st.deps.(i - 1))
  in
  let ( let* ) r f = Result.bind r f in
  let mismatch what =
    Error
      (err ~code:"natded/rule-mismatch" "step %d: %s" step_no what)
  in
  let f = st.formulas.(k) in
  match st.rules.(k) with
  | Premise | Assumption -> Ok (Intset.singleton step_no)
  | Reiterate i ->
      let* fi, di = cite i in
      if Prop.equal f fi then Ok di
      else mismatch "Reiterate must restate the cited formula"
  | And_intro (i, j) -> (
      let* fi, di = cite i in
      let* fj, dj = cite j in
      match f with
      | Prop.And (a, b) when Prop.equal a fi && Prop.equal b fj ->
          Ok (Intset.union di dj)
      | _ -> mismatch "Join must conclude the conjunction of the cited steps")
  | And_elim_left i -> (
      let* fi, di = cite i in
      match fi with
      | Prop.And (a, _) when Prop.equal f a -> Ok di
      | _ -> mismatch "Split(left) needs a conjunction whose left part is the conclusion")
  | And_elim_right i -> (
      let* fi, di = cite i in
      match fi with
      | Prop.And (_, b) when Prop.equal f b -> Ok di
      | _ -> mismatch "Split(right) needs a conjunction whose right part is the conclusion")
  | Or_intro_left i -> (
      let* fi, di = cite i in
      match f with
      | Prop.Or (a, _) when Prop.equal a fi -> Ok di
      | _ -> mismatch "Widen(left) must conclude a disjunction whose left part is the cited formula")
  | Or_intro_right i -> (
      let* fi, di = cite i in
      match f with
      | Prop.Or (_, b) when Prop.equal b fi -> Ok di
      | _ -> mismatch "Widen(right) must conclude a disjunction whose right part is the cited formula")
  | Or_elim (i, j, l) -> (
      let* fi, di = cite i in
      let* fj, dj = cite j in
      let* fl, dl = cite l in
      match (fi, fj, fl) with
      | Prop.Or (a, b), Prop.Implies (a', c1), Prop.Implies (b', c2)
        when Prop.equal a a' && Prop.equal b b' && Prop.equal c1 c2
             && Prop.equal f c1 ->
          Ok (Intset.union di (Intset.union dj dl))
      | _ ->
          mismatch
            "Cases needs a disjunction and implications from each disjunct to the conclusion")
  | Imp_elim (i, j) -> (
      let* fi, di = cite i in
      let* fj, dj = cite j in
      match fi with
      | Prop.Implies (a, b) when Prop.equal a fj && Prop.equal b f ->
          Ok (Intset.union di dj)
      | _ ->
          mismatch
            "Detach needs an implication and its antecedent, concluding the consequent")
  | Imp_intro (i, j) -> (
      let* fi, di = cite i in
      let* fj, dj = cite j in
      ignore di;
      match (st.rules.(i - 1), f) with
      | (Premise | Assumption), Prop.Implies (a, b)
        when Prop.equal a fi && Prop.equal b fj ->
          Ok (Intset.remove i dj)
      | (Premise | Assumption), _ ->
          mismatch
            "Conclusion must conclude (discharged formula -> cited result)"
      | _ ->
          mismatch "Conclusion can only discharge a Premise or Assumption step")
  | Iff_intro (i, j) -> (
      let* fi, di = cite i in
      let* fj, dj = cite j in
      match (fi, fj, f) with
      | Prop.Implies (a, b), Prop.Implies (b', a'), Prop.Iff (x, y)
        when Prop.equal a a' && Prop.equal b b' && Prop.equal x a
             && Prop.equal y b ->
          Ok (Intset.union di dj)
      | _ -> mismatch "IffIntro needs both implications of the equivalence")
  | Iff_elim_left i -> (
      let* fi, di = cite i in
      match (fi, f) with
      | Prop.Iff (a, b), Prop.Implies (a', b')
        when Prop.equal a a' && Prop.equal b b' ->
          Ok di
      | _ -> mismatch "IffElim(left) concludes the forward implication")
  | Iff_elim_right i -> (
      let* fi, di = cite i in
      match (fi, f) with
      | Prop.Iff (a, b), Prop.Implies (b', a')
        when Prop.equal a a' && Prop.equal b b' ->
          Ok di
      | _ -> mismatch "IffElim(right) concludes the backward implication")
  | Not_elim (i, j) -> (
      let* fi, di = cite i in
      let* fj, dj = cite j in
      let contradictory =
        match (fi, fj) with
        | a, Prop.Not b when Prop.equal a b -> true
        | Prop.Not a, b when Prop.equal a b -> true
        | _ -> false
      in
      match f with
      | Prop.Bot when contradictory -> Ok (Intset.union di dj)
      | _ ->
          mismatch
            "Contradiction needs a formula and its negation, concluding false")
  | Not_intro (i, j) -> (
      let* fi, di = cite i in
      let* fj, dj = cite j in
      ignore di;
      match (st.rules.(i - 1), fj, f) with
      | (Premise | Assumption), Prop.Bot, Prop.Not a when Prop.equal a fi ->
          Ok (Intset.remove i dj)
      | (Premise | Assumption), _, _ ->
          mismatch
            "Reductio must cite a false step and conclude the negation of the discharged assumption"
      | _ -> mismatch "Reductio can only discharge a Premise or Assumption step")
  | Bot_elim i -> (
      let* fi, di = cite i in
      match fi with
      | Prop.Bot -> Ok di
      | _ -> mismatch "ExFalso must cite a false step")
  | Excluded_middle -> (
      match f with
      | Prop.Or (a, Prop.Not b) when Prop.equal a b -> Ok Intset.empty
      | _ -> mismatch "ExcludedMiddle must conclude a formula or its negation")

let check proof =
  match proof with
  | [] ->
      Error [ Diagnostic.error ~code:"natded/empty-proof" "the proof has no steps" ]
  | _ ->
      let arr = Array.of_list proof in
      let n = Array.length arr in
      let st =
        {
          formulas = Array.map (fun s -> s.formula) arr;
          deps = Array.make n Intset.empty;
          rules = Array.map (fun s -> s.rule) arr;
        }
      in
      let errors = ref [] in
      for k = 0 to n - 1 do
        match check_step st k with
        | Ok deps -> st.deps.(k) <- deps
        | Error d -> errors := d :: !errors
      done;
      if !errors <> [] then Error (List.rev !errors)
      else
        let final = st.deps.(n - 1) in
        let premises =
          Intset.elements final |> List.map (fun i -> st.formulas.(i - 1))
        in
        Ok
          {
            proof;
            dependencies = st.deps;
            premises;
            conclusion = st.formulas.(n - 1);
          }

let is_valid proof = Result.is_ok (check proof)
let semantically_sound c = Sat.entails c.premises c.conclusion

let theorem c =
  match c.premises with
  | [] -> c.conclusion
  | ps -> Prop.Implies (Prop.conj ps, c.conclusion)

let pp ppf proof =
  let n = List.length proof in
  let width = String.length (string_of_int n) in
  List.iteri
    (fun k { formula; rule } ->
      let cites = citations rule in
      let cite_text =
        match cites with
        | [] -> ""
        | _ -> ", " ^ String.concat ", " (List.map string_of_int cites)
      in
      Format.fprintf ppf "%*d  %-40s (%s%s)@." width (k + 1)
        (Prop.to_string formula) (rule_name rule) cite_text)
    proof
