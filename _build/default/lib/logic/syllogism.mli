(** Categorical syllogisms with distribution analysis.

    Four of the eight formal fallacies in Damer's list that the paper
    cites (Section IV.A) are syllogistic: false conversion, undistributed
    middle term, and illicit distribution of an end term (illicit
    major/minor); the classical rules also cover exclusive premises and
    the affirmative/negative mismatches.  This module decides validity of
    an AEIO syllogism by those rules and names each violated rule, which
    is exactly the diagnosis a formal argument checker can produce. *)

(** The four categorical forms. *)
type form =
  | A  (** All S are P. *)
  | E  (** No S are P. *)
  | I  (** Some S are P. *)
  | O  (** Some S are not P. *)

type proposition = { form : form; subject : string; predicate : string }

type t = {
  major : proposition;
  minor : proposition;
  conclusion : proposition;
}

(** Violations of the classical rules. *)
type violation =
  | Undistributed_middle
  | Illicit_major  (** Major term distributed in conclusion only. *)
  | Illicit_minor
  | Exclusive_premises  (** Two negative premises. *)
  | Affirmative_from_negative
      (** Negative premise but affirmative conclusion. *)
  | Negative_from_affirmatives
  | Existential_from_universals
      (** Particular conclusion from two universal premises (invalid
          without existential import, the modern reading). *)
  | Malformed of string
      (** Term structure broken: middle term missing, conclusion terms
          not matching the premises, etc. *)

val prop : form -> string -> string -> proposition

val subject_distributed : form -> bool
(** Distribution: the subject is distributed in A and E. *)

val predicate_distributed : form -> bool
(** The predicate is distributed in E and O. *)

val is_negative : form -> bool
(** E and O are negative. *)

val is_universal : form -> bool
(** A and E are universal. *)

val middle_term : t -> string option
(** The term occurring in both premises and not in the conclusion, when
    the syllogism is well-formed. *)

val figure : t -> int option
(** Classical figure 1-4 from the middle term's positions. *)

val mood : t -> form * form * form

val violations : t -> violation list
(** Empty iff the syllogism is valid (modern interpretation, no
    existential import). *)

val is_valid : t -> bool

val all_moods_figures : unit -> t list
(** All 256 mood/figure combinations over canonical term names — the
    enumeration used to validate {!violations} against the classical
    list of 15 unconditionally valid forms. *)

val valid_form_names : (string * (form * form * form) * int) list
(** The 15 unconditionally valid forms as (traditional name, mood,
    figure): Barbara, Celarent, Darii, Ferio, Cesare, Camestres,
    Festino, Baroco, Darapti is excluded (needs existential import),
    Disamis, Datisi, Bocardo, Ferison, Camenes, Dimaris, Fresison. *)

val name_of : t -> string option
(** Traditional name when the syllogism is one of the valid forms. *)

(** Conversion of a single proposition — the "false conversion" fallacy
    is inferring the converse where conversion is invalid. *)

val converse : proposition -> proposition
(** Swaps subject and predicate, keeping the form. *)

val conversion_valid : form -> bool
(** Simple conversion is valid for E and I only. *)

val violation_to_string : violation -> string
val pp_proposition : Format.formatter -> proposition -> unit
val pp : Format.formatter -> t -> unit
