lib/logic/syllogism.ml: Format List
