lib/logic/sat.ml: Array Bool Hashtbl List Map Printf Prop String
