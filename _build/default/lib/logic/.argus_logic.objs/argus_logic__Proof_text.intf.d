lib/logic/proof_text.mli: Natded
