lib/logic/sat.mli: Prop
