lib/logic/prop.ml: Bool Format Hashtbl List Printf Stdlib String
