lib/logic/term.mli: Format
