lib/logic/syllogism.mli: Format
