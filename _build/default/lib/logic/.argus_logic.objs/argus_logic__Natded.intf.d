lib/logic/natded.mli: Argus_core Format Prop Set
