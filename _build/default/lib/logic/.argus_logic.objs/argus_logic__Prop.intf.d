lib/logic/prop.mli: Format
