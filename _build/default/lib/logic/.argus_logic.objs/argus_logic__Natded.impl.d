lib/logic/natded.ml: Argus_core Array Format Int List Prop Result Sat Set String
