lib/logic/term.ml: Format Hashtbl List Map Printf Stdlib String
