lib/logic/proof_text.ml: Buffer List Natded Printf Prop String
