let rule_keywords =
  [
    "premise"; "assumption"; "join"; "split-left"; "split-right";
    "widen-left"; "widen-right"; "cases"; "detach"; "conclusion";
    "iff-intro"; "iff-elim-left"; "iff-elim-right"; "contradiction";
    "reductio"; "exfalso"; "reiterate"; "excluded-middle";
  ]

exception Line_error of string

let rule_of ~keyword ~args =
  let arity n k =
    if List.length args <> n then
      raise
        (Line_error
           (Printf.sprintf "%s takes %d citation(s), got %d" keyword n
              (List.length args)))
    else k ()
  in
  let one k = arity 1 (fun () -> k (List.nth args 0)) in
  let two k = arity 2 (fun () -> k (List.nth args 0) (List.nth args 1)) in
  match keyword with
  | "premise" -> arity 0 (fun () -> Natded.Premise)
  | "assumption" -> arity 0 (fun () -> Natded.Assumption)
  | "join" -> two (fun i j -> Natded.And_intro (i, j))
  | "split-left" -> one (fun i -> Natded.And_elim_left i)
  | "split-right" -> one (fun i -> Natded.And_elim_right i)
  | "widen-left" -> one (fun i -> Natded.Or_intro_left i)
  | "widen-right" -> one (fun i -> Natded.Or_intro_right i)
  | "cases" ->
      arity 3 (fun () ->
          Natded.Or_elim
            (List.nth args 0, List.nth args 1, List.nth args 2))
  | "detach" -> two (fun i j -> Natded.Imp_elim (i, j))
  | "conclusion" -> two (fun i j -> Natded.Imp_intro (i, j))
  | "iff-intro" -> two (fun i j -> Natded.Iff_intro (i, j))
  | "iff-elim-left" -> one (fun i -> Natded.Iff_elim_left i)
  | "iff-elim-right" -> one (fun i -> Natded.Iff_elim_right i)
  | "contradiction" -> two (fun i j -> Natded.Not_elim (i, j))
  | "reductio" -> two (fun i j -> Natded.Not_intro (i, j))
  | "exfalso" -> one (fun i -> Natded.Bot_elim i)
  | "reiterate" -> one (fun i -> Natded.Reiterate i)
  | "excluded-middle" -> arity 0 (fun () -> Natded.Excluded_middle)
  | other -> raise (Line_error (Printf.sprintf "unknown rule %S" other))

let keyword_of_rule = function
  | Natded.Premise -> "premise"
  | Natded.Assumption -> "assumption"
  | Natded.And_intro _ -> "join"
  | Natded.And_elim_left _ -> "split-left"
  | Natded.And_elim_right _ -> "split-right"
  | Natded.Or_intro_left _ -> "widen-left"
  | Natded.Or_intro_right _ -> "widen-right"
  | Natded.Or_elim _ -> "cases"
  | Natded.Imp_elim _ -> "detach"
  | Natded.Imp_intro _ -> "conclusion"
  | Natded.Iff_intro _ -> "iff-intro"
  | Natded.Iff_elim_left _ -> "iff-elim-left"
  | Natded.Iff_elim_right _ -> "iff-elim-right"
  | Natded.Not_elim _ -> "contradiction"
  | Natded.Not_intro _ -> "reductio"
  | Natded.Bot_elim _ -> "exfalso"
  | Natded.Reiterate _ -> "reiterate"
  | Natded.Excluded_middle -> "excluded-middle"

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

(* Strip an optional "<n>." or "<n>:" prefix; return (number, rest). *)
let strip_number line =
  let n = String.length line in
  let rec digits i = if i < n && line.[i] >= '0' && line.[i] <= '9' then digits (i + 1) else i in
  let d = digits 0 in
  if d > 0 && d < n && (line.[d] = '.' || line.[d] = ':') then
    ( Some (int_of_string (String.sub line 0 d)),
      String.sub line (d + 1) (n - d - 1) )
  else (None, line)

let parse_step line =
  let words =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun w -> w <> "")
  in
  (* Trailing integers are citations; the word before them is the rule
     keyword; the rest is the formula. *)
  let rev = List.rev words in
  let rec take_ints acc = function
    | w :: rest when int_of_string_opt w <> None ->
        take_ints (int_of_string w :: acc) rest
    | rest -> (acc, rest)
  in
  let args, rest = take_ints [] rev in
  match rest with
  | [] -> raise (Line_error "missing rule name")
  | keyword :: formula_rev ->
      let keyword = String.lowercase_ascii keyword in
      if not (List.mem keyword rule_keywords) then
        raise (Line_error (Printf.sprintf "unknown rule %S" keyword));
      let formula_text = String.concat " " (List.rev formula_rev) in
      let formula =
        match Prop.of_string formula_text with
        | Ok f -> f
        | Error e ->
            raise
              (Line_error
                 (Printf.sprintf "cannot parse formula %S: %s" formula_text e))
      in
      { Natded.formula; rule = rule_of ~keyword ~args }

let parse text =
  let lines = String.split_on_char '\n' text in
  let steps = ref [] in
  let count = ref 0 in
  let error = ref None in
  List.iteri
    (fun lineno raw ->
      if !error = None then
        let line = String.trim (strip_comment raw) in
        if line <> "" then
          try
            let number, rest = strip_number line in
            incr count;
            (match number with
            | Some n when n <> !count ->
                raise
                  (Line_error
                     (Printf.sprintf "step numbered %d but is step %d" n !count))
            | _ -> ());
            steps := parse_step (String.trim rest) :: !steps
          with Line_error msg ->
            error := Some (Printf.sprintf "line %d: %s" (lineno + 1) msg))
    lines;
  match !error with
  | Some e -> Error e
  | None ->
      if !steps = [] then Error "empty proof"
      else Ok (List.rev !steps)

let parse_exn text =
  match parse text with Ok p -> p | Error e -> failwith e

let print proof =
  let buf = Buffer.create 256 in
  List.iteri
    (fun k { Natded.formula; rule } ->
      let cites = Natded.citations rule in
      Buffer.add_string buf
        (Printf.sprintf "%d. %s %s%s\n" (k + 1) (Prop.to_string formula)
           (keyword_of_rule rule)
           (String.concat ""
              (List.map (fun i -> " " ^ string_of_int i) cites))))
    proof;
  Buffer.contents buf
