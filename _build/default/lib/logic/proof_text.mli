(** A textual format for natural-deduction proofs.

    One step per line, [#] comments, blank lines ignored:

    {v
    # the Haley et al. outer argument
    1. i -> v      premise
    2. c -> h      premise
    3. y -> v & c  premise
    4. d -> y      premise
    5. d           premise
    6. y           detach 4 5
    7. v & c       detach 3 6
    8. v           split-left 7
    9. c           split-right 7
    10. h          detach 2 9
    11. d -> h     conclusion 5 10
    v}

    The leading [n.] is optional and, when present, must equal the
    actual step number — a proof written down with wrong numbering is
    already suspect.  Rule names (case-insensitive):
    [premise], [assumption], [join i j], [split-left i],
    [split-right i], [widen-left i], [widen-right i], [cases i j k],
    [detach i j], [conclusion i j], [iff-intro i j], [iff-elim-left i],
    [iff-elim-right i], [contradiction i j], [reductio i j],
    [exfalso i], [reiterate i], [excluded-middle].

    Parsing anchors at the end of each line — trailing integers are
    citations and the word before them is the rule — so formulas may
    freely use identifiers that happen to look like rule names. *)

val rule_keywords : string list

val parse : string -> (Natded.t, string) result
(** Parse a whole proof.  The error message names the offending line. *)

val parse_exn : string -> Natded.t

val print : Natded.t -> string
(** Numbered rendering in the same format; [parse (print p) = Ok p]. *)
